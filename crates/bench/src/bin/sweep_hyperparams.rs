//! Extension sweep — how the WholeGraph-vs-DGL gap moves with the
//! sampling hyperparameters the paper holds fixed (batch 512, fanout 30).
//!
//! Larger fanouts multiply the sampled-edge count (CPU sampling pain) and
//! the gathered-feature volume (PCIe pain), so the host pipelines fall
//! further behind as mini-batches grow — the trend that motivates doing
//! both on the GPU in the first place.

use wg_bench::{banner, bench_dataset, secs, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    banner(
        "Sweep",
        "epoch time vs fanout and batch size (GraphSage, papers stand-in)",
    );
    let dataset = bench_dataset(DatasetKind::OgbnPapers100M, 61);

    println!("\n--- fanout sweep (batch 512, 3 layers) ---");
    let mut t = Table::new(&[
        "fanout",
        "edges/iter",
        "DGL (s)",
        "WholeGraph (s)",
        "speedup",
    ]);
    for fanout in [5usize, 10, 20, 30] {
        let mut row: Vec<String> = vec![fanout.to_string()];
        let mut edges = 0u64;
        let mut times = Vec::new();
        for fw in [Framework::Dgl, Framework::WholeGraph] {
            let machine = Machine::dgx_a100();
            let cfg = PipelineConfig {
                hidden: 256,
                num_layers: 3,
                heads: 4,
                fanouts: vec![fanout; 3],
                batch_size: 512,
                dropout: 0.5,
                lr: 3e-3,
                ..PipelineConfig::tiny(fw, ModelKind::GraphSage)
            }
            .with_seed(61);
            let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
            let batches = pipe.epoch_batches(0);
            let it = pipe.run_iteration(0, 0, &batches[0], true);
            edges = it.sample_stats.edges_sampled;
            let r = pipe.measure_epoch(0, 1);
            times.push(r.epoch_time);
        }
        row.push(edges.to_string());
        row.push(secs(times[0]));
        row.push(secs(times[1]));
        row.push(format!("{:.1}x", times[0] / times[1]));
        t.row(&row);
    }
    t.print();

    println!("\n--- batch-size sweep (fanout 15, 3 layers) ---");
    let mut t = Table::new(&["batch", "DGL (s)", "WholeGraph (s)", "speedup"]);
    for batch in [64usize, 256, 1024] {
        let mut times = Vec::new();
        for fw in [Framework::Dgl, Framework::WholeGraph] {
            let machine = Machine::dgx_a100();
            let cfg = PipelineConfig {
                hidden: 256,
                num_layers: 3,
                heads: 4,
                fanouts: vec![15; 3],
                batch_size: batch,
                dropout: 0.5,
                lr: 3e-3,
                ..PipelineConfig::tiny(fw, ModelKind::GraphSage)
            }
            .with_seed(61);
            let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
            let r = pipe.measure_epoch(0, 1);
            times.push(r.epoch_time);
        }
        t.row(&[
            batch.to_string(),
            secs(times[0]),
            secs(times[1]),
            format!("{:.1}x", times[0] / times[1]),
        ]);
    }
    t.print();
    println!("\nTrend: the host pipeline's deficit grows with sampled volume;");
    println!("WholeGraph's epoch time is dominated by (GPU) training compute");
    println!("at every setting.");
}
