//! Cache-size-vs-epoch-time sweep — the evidence behind the hotness-aware
//! feature-cache tier (ROADMAP item 2). Runs the wallclock harness's
//! epoch workload shape (ogbn-products stand-in at 1/300 — here with the
//! power-law degree profile, matching the real graph's tail — tiny
//! GraphSage, 4 simulated GPUs) once uncached and then across a grid of cache sizes
//! (1% → 10% of the feature rows) in both static (degree-ranked
//! replication) and CLOCK (dynamic second-chance) modes, and writes
//! `BENCH_cache.json` with per-point hit rates, remote-row counts, bus
//! traffic, saved bus bytes, and epoch times.
//!
//! Two invariants make the artifact gateable (`check_bench cache`):
//!
//! * **Values never move** — every point's loss/accuracy bits equal the
//!   uncached baseline's. Caching changes cost, never numerics.
//! * **Bytes are conserved** — `bus_bytes + saved_bus_bytes` equals the
//!   baseline's `bus_bytes` exactly: every remote row is either fetched
//!   (a miss) or saved (a cached hit), never dropped or double-counted.
//!
//! Each configuration trains two epochs and reports the *second*: epoch 0
//! warms the CLOCK caches (and the scratch pools), so the recorded hit
//! rates are steady-state figures, not cold-start ones. The per-point
//! traffic numbers are metric-registry deltas over exactly that epoch.

use std::sync::Arc;

use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_bench::{banner, Table};
use wg_graph::{DatasetKind, DegreeProfile, MultiGpuGraph, SyntheticDataset};
use wg_mem::{
    global_gather_planned, global_gather_planned_cached, plan_gather, plan_gather_cached,
    FeatureCache, RowPlan,
};
use wholegraph::prelude::*;

/// Cache sizes swept, as fractions of the DSM feature-row count. The
/// largest point stays at the acceptance bound: a hot set of at most 10%
/// of rows must cut remote gather rows by at least half.
const FRACTIONS: [f64; 4] = [0.01, 0.025, 0.05, 0.10];

/// One swept configuration's measurements (mode `None` = the uncached
/// baseline).
struct Point {
    mode: Option<CacheMode>,
    rows: usize,
    frac: f64,
    hits: u64,
    misses: u64,
    remote_rows: u64,
    bus_bytes: u64,
    saved_bus_bytes: u64,
    epoch_time: SimTime,
    gather_time: SimTime,
    loss_bits: u32,
    accuracy_bits: u64,
}

impl Point {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / ((self.hits + self.misses) as f64).max(1.0)
    }
}

/// Counter value by exact name, zero when the counter never fired.
fn counter(snap: &wg_trace::metrics::Snapshot, name: &str) -> f64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0.0, |&(_, v)| v)
}

/// Train two epochs of the wallclock-shaped pipeline under `cache` and
/// measure the second one (report + metric deltas).
fn run(dataset: &Arc<SyntheticDataset>, rows: usize, mode: Option<CacheMode>, frac: f64) -> Point {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(3)
        .with_cache(rows, mode.unwrap_or(CacheMode::Static));
    let mut pipe = Pipeline::new(machine, Arc::clone(dataset), cfg).expect("pipeline");
    pipe.train_epoch(0); // warm-up epoch: fills CLOCK caches + pools
    let before = wg_trace::metrics::snapshot();
    let r = pipe.train_epoch(1);
    let after = wg_trace::metrics::snapshot();
    let delta = |name: &str| (counter(&after, name) - counter(&before, name)).round() as u64;
    Point {
        mode,
        rows,
        frac,
        hits: delta("mem.cache.hits"),
        misses: delta("mem.cache.misses"),
        remote_rows: delta("mem.gather.remote_rows"),
        bus_bytes: delta("mem.gather.bus_bytes"),
        saved_bus_bytes: delta("mem.cache.saved_bus_bytes"),
        epoch_time: r.epoch_time,
        gather_time: r.gather_time,
        loss_bits: r.loss.to_bits(),
        accuracy_bits: r.train_accuracy.to_bits(),
    }
}

fn point_json(p: &Point, baseline: &Point) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"rows\": {}, \"frac\": {:.4}, \"hits\": {}, \
         \"misses\": {}, \"hit_rate\": {:.6}, \"remote_rows\": {}, \"bus_bytes\": {}, \
         \"saved_bus_bytes\": {}, \"epoch_time_s\": {:.9}, \"gather_time_s\": {:.9}, \
         \"loss_bits\": \"{:08x}\", \"accuracy_bits\": \"{:016x}\", \
         \"remote_row_reduction\": {:.6}}}",
        p.mode.map_or("off", |m| m.as_str()),
        p.rows,
        p.frac,
        p.hits,
        p.misses,
        p.hit_rate(),
        p.remote_rows,
        p.bus_bytes,
        p.saved_bus_bytes,
        p.epoch_time.as_secs(),
        p.gather_time.as_secs(),
        p.loss_bits,
        p.accuracy_bits,
        1.0 - p.remote_rows as f64 / (baseline.remote_rows as f64).max(1.0),
    )
}

/// Batches in the hot-set gather stream.
const HOTSET_BATCHES: usize = 64;
/// Rows gathered per hot-set batch.
const HOTSET_BATCH_ROWS: usize = 2048;
/// Zipf exponent of the hot-set stream. The epoch phase above now gets
/// its skew organically from the power-law degree profile; this phase
/// keeps an *explicit* calibrated stream (accesses drawn Zipf(1.1) over
/// the node set, hot ranks scattered across the DSM partition by a
/// fixed permutation) so the headline remote-row-cut claim is measured
/// against a known access law, independent of sampler behavior.
const ZIPF_S: f64 = 1.1;

/// One hot-set gather configuration's measurements.
struct HotPoint {
    mode: Option<CacheMode>,
    rows: usize,
    frac: f64,
    hits: u64,
    remote_rows: u64,
    bus_bytes: u64,
    saved_bus_bytes: u64,
    sim_time: SimTime,
    checksum: u64,
}

impl HotPoint {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / (HOTSET_BATCHES * HOTSET_BATCH_ROWS) as f64
    }
}

/// The deterministic Zipf-distributed access stream: `HOTSET_BATCHES`
/// batches of DSM feature rows, hot ranks spread across the chunked
/// partition by a shuffled permutation (otherwise the entire hot set
/// would land on rank 0 and "hits" would mostly have been local anyway).
fn hotset_stream(store: &MultiGpuGraph, n: usize) -> Vec<Vec<usize>> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(12));
    // Inverse-CDF sampling over w_i = (i+1)^-s.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(-ZIPF_S);
        cum.push(acc);
    }
    let total = acc;
    let mut rng = SmallRng::seed_from_u64(23);
    (0..HOTSET_BATCHES)
        .map(|_| {
            (0..HOTSET_BATCH_ROWS)
                .map(|_| {
                    let u = rng.gen_range(0.0..total);
                    let i = cum.partition_point(|&c| c < u).min(n - 1);
                    store.feature_row(perm[i] as u64)
                })
                .collect()
        })
        .collect()
}

/// FNV-1a over the gathered f32 words (bit-exactness witness).
fn checksum_f32(h: u64, data: &[f32]) -> u64 {
    wg_tensor::simd::fnv1a_f32(h, data)
}

/// Replay the hot-set stream through the planned gather (cached or not),
/// round-robining the executing rank, and accumulate the stats.
fn run_hotset(
    store: &MultiGpuGraph,
    machine: &Machine,
    stream: &[Vec<usize>],
    rows: usize,
    mode: Option<CacheMode>,
    frac: f64,
) -> HotPoint {
    let gpus = machine.num_gpus();
    let mut fc = mode.map(|m| match m {
        CacheMode::Static => {
            // Rank rows by observed access frequency over the stream —
            // the load-time hotness signal the static tier replicates.
            let mut freq = vec![0u64; store.features().rows()];
            for batch in stream {
                for &r in batch {
                    freq[r] += 1;
                }
            }
            FeatureCache::new_static(store.features(), &freq, rows)
        }
        CacheMode::Clock => FeatureCache::new_clock(store.features(), gpus, rows),
    });
    let spec = machine.spec(wg_sim::DeviceId::Gpu(0)).clone();
    let mut plan = RowPlan::default();
    let mut out = vec![0.0f32; HOTSET_BATCH_ROWS * store.features().width()];
    let (mut hits, mut remote, mut bus, mut saved) = (0u64, 0u64, 0u64, 0u64);
    let mut sim = SimTime::ZERO;
    let mut sum = wg_tensor::simd::FNV_OFFSET;
    for (b, batch) in stream.iter().enumerate() {
        let rank = (b % gpus as usize) as u32;
        let stats = if let Some(c) = fc.as_mut() {
            plan_gather_cached(store.features(), batch, &mut plan, c, rank);
            global_gather_planned_cached(
                store.features(),
                &plan,
                &mut out,
                rank,
                machine.cost(),
                &spec,
                c,
            )
        } else {
            plan_gather(store.features(), batch, &mut plan);
            global_gather_planned(
                store.features(),
                &plan,
                &mut out,
                rank,
                machine.cost(),
                &spec,
            )
        };
        hits += stats.cache_hits as u64;
        remote += stats.remote_rows as u64;
        bus += stats.bus_bytes;
        saved += stats.saved_bus_bytes;
        sim += stats.sim_time;
        sum = checksum_f32(sum, &out);
    }
    HotPoint {
        mode,
        rows,
        frac,
        hits,
        remote_rows: remote,
        bus_bytes: bus,
        saved_bus_bytes: saved,
        sim_time: sim,
        checksum: sum,
    }
}

fn hot_point_json(p: &HotPoint, baseline: &HotPoint) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"rows\": {}, \"frac\": {:.4}, \"hits\": {}, \
         \"hit_rate\": {:.6}, \"remote_rows\": {}, \"bus_bytes\": {}, \
         \"saved_bus_bytes\": {}, \"sim_time_s\": {:.9}, \"checksum\": \"{:016x}\", \
         \"remote_row_reduction\": {:.6}}}",
        p.mode.map_or("off", |m| m.as_str()),
        p.rows,
        p.frac,
        p.hits,
        p.hit_rate(),
        p.remote_rows,
        p.bus_bytes,
        p.saved_bus_bytes,
        p.sim_time.as_secs(),
        p.checksum,
        1.0 - p.remote_rows as f64 / (baseline.remote_rows as f64).max(1.0),
    )
}

fn main() {
    banner(
        "cache sweep",
        "feature-cache size vs remote traffic and epoch time",
    );
    wg_trace::enable_metrics();
    // Power-law degree profile: the real ogbn-products graph is heavy-
    // tailed, and neighbor sampling visits vertices roughly in proportion
    // to degree — a uniform-degree stand-in starves the cache of skew and
    // under-reports epoch-path hit rates (~12% with the old profile).
    let dataset = Arc::new(SyntheticDataset::generate_with_profile(
        DatasetKind::OgbnProducts,
        300,
        8,
        DegreeProfile::PowerLaw { alpha: 1.05 },
    ));
    let total_rows = dataset.num_nodes();
    println!(
        "dataset: ogbn-products stand-in at 1/300 (power-law degrees, alpha 1.05) — \
         {} nodes; tiny GraphSage, 4 GPUs\n",
        total_rows
    );

    let baseline = run(&dataset, 0, None, 0.0);
    let mut points = Vec::new();
    for mode in [CacheMode::Static, CacheMode::Clock] {
        for frac in FRACTIONS {
            let rows = ((total_rows as f64 * frac).round() as usize).max(1);
            points.push(run(&dataset, rows, Some(mode), frac));
        }
    }

    let mut t = Table::new(&[
        "mode",
        "rows",
        "frac",
        "hit rate",
        "remote rows",
        "saved MB",
        "gather",
        "epoch",
    ]);
    let row = |t: &mut Table, p: &Point| {
        t.row(&[
            p.mode.map_or("off", |m| m.as_str()).to_string(),
            p.rows.to_string(),
            format!("{:.1}%", p.frac * 100.0),
            format!("{:.1}%", p.hit_rate() * 100.0),
            p.remote_rows.to_string(),
            format!("{:.2}", p.saved_bus_bytes as f64 / 1e6),
            format!("{}", p.gather_time),
            format!("{}", p.epoch_time),
        ]);
    };
    row(&mut t, &baseline);
    for p in &points {
        row(&mut t, p);
    }
    t.print();

    for p in &points {
        assert_eq!(
            p.loss_bits, baseline.loss_bits,
            "{:?}/{} rows: cached loss diverged from baseline",
            p.mode, p.rows
        );
        assert_eq!(
            p.bus_bytes + p.saved_bus_bytes,
            baseline.bus_bytes,
            "{:?}/{} rows: bus bytes not conserved",
            p.mode,
            p.rows
        );
    }
    println!("\nall epoch points bit-identical to baseline; bus bytes conserved");

    // Phase 2: the hot-set gather sweep — same gather kernel, an access
    // stream with the skew real power-law graphs produce. This is where
    // the headline claim (≥50% of remote rows cut by a ≤10% cache) is
    // measured and gated.
    println!("\nhot-set gather stream: {HOTSET_BATCHES} batches x {HOTSET_BATCH_ROWS} rows, Zipf({ZIPF_S})\n");
    let machine = Machine::new(MachineConfig::dgx_like(8));
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &dataset.graph,
        &dataset.features,
        dataset.feature_dim,
        &machine.memory(),
    )
    .expect("hot-set store");
    let stream = hotset_stream(&store, total_rows);
    let hot_baseline = run_hotset(&store, &machine, &stream, 0, None, 0.0);
    let mut hot_points = Vec::new();
    for mode in [CacheMode::Static, CacheMode::Clock] {
        for frac in FRACTIONS {
            let rows = ((total_rows as f64 * frac).round() as usize).max(1);
            hot_points.push(run_hotset(
                &store,
                &machine,
                &stream,
                rows,
                Some(mode),
                frac,
            ));
        }
    }

    let mut ht = Table::new(&[
        "mode",
        "rows",
        "frac",
        "hit rate",
        "remote rows",
        "cut",
        "saved MB",
        "sim time",
    ]);
    let hrow = |t: &mut Table, p: &HotPoint| {
        t.row(&[
            p.mode.map_or("off", |m| m.as_str()).to_string(),
            p.rows.to_string(),
            format!("{:.1}%", p.frac * 100.0),
            format!("{:.1}%", p.hit_rate() * 100.0),
            p.remote_rows.to_string(),
            format!(
                "{:.1}%",
                (1.0 - p.remote_rows as f64 / hot_baseline.remote_rows as f64) * 100.0
            ),
            format!("{:.2}", p.saved_bus_bytes as f64 / 1e6),
            format!("{}", p.sim_time),
        ]);
    };
    hrow(&mut ht, &hot_baseline);
    for p in &hot_points {
        hrow(&mut ht, p);
    }
    ht.print();

    for p in &hot_points {
        assert_eq!(
            p.checksum, hot_baseline.checksum,
            "{:?}/{} rows: cached hot-set gather diverged from baseline",
            p.mode, p.rows
        );
        assert_eq!(
            p.bus_bytes + p.saved_bus_bytes,
            hot_baseline.bus_bytes,
            "{:?}/{} rows: hot-set bus bytes not conserved",
            p.mode,
            p.rows
        );
    }
    println!("\nall hot-set points bit-identical to baseline; bus bytes conserved");

    let points_json: Vec<String> = std::iter::once(&baseline)
        .chain(points.iter())
        .map(|p| point_json(p, &baseline))
        .collect();
    let hot_json: Vec<String> = std::iter::once(&hot_baseline)
        .chain(hot_points.iter())
        .map(|p| hot_point_json(p, &hot_baseline))
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"wg-cache-sweep-v1\",\n  \"dataset\": \"ogbn-products\",\n  \
         \"scale\": 300,\n  \"seed\": 3,\n  \"total_rows\": {total_rows},\n  \
         \"baseline\": {},\n  \"points\": [\n{}\n  ],\n  \
         \"hotset\": {{\n  \"batches\": {HOTSET_BATCHES},\n  \
         \"batch_rows\": {HOTSET_BATCH_ROWS},\n  \"zipf_s\": {ZIPF_S},\n  \
         \"baseline\": {},\n  \"points\": [\n{}\n  ]\n  }}\n}}\n",
        point_json(&baseline, &baseline),
        points_json.join(",\n"),
        hot_point_json(&hot_baseline, &hot_baseline),
        hot_json.join(",\n")
    );
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("Wrote BENCH_cache.json");
}
