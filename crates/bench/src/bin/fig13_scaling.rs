//! Figure 13 — multi-node scalability of WholeGraph on the three large
//! datasets for GCN, GraphSage and GAT, 1 → 8 nodes.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, Table};
use wg_graph::DatasetKind;
use wholegraph::multinode::scaling_sweep;
use wholegraph::prelude::*;

fn main() {
    banner("Figure 13", "multi-node scaling on three large datasets");
    let mut t = Table::new(&[
        "dataset",
        "model",
        "1 node",
        "2 nodes",
        "4 nodes",
        "8 nodes",
        "8-node eff.",
    ]);
    for kind in [
        DatasetKind::OgbnPapers100M,
        DatasetKind::Friendster,
        DatasetKind::UkDomain,
    ] {
        let dataset = bench_dataset(kind, 23);
        for model in ModelKind::ALL {
            let machine = Machine::dgx_a100();
            let mut cfg = bench_pipeline_config(Framework::WholeGraph, model).with_seed(23);
            // Keep ~500 iterations per epoch so the stand-in has enough
            // waves to distribute across 64 ranks without quantization
            // (the paper's full-size datasets have 1000+ iterations; the
            // KONECT stand-ins have ~1% labels, hence few batches).
            cfg.batch_size = (dataset.train.len() / 500).max(2);
            let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
            let pts = scaling_sweep(&mut pipe, &[1, 2, 4, 8], 1);
            t.row(&[
                kind.name().to_string(),
                model.name().to_string(),
                format!("{:.2}x", pts[0].speedup),
                format!("{:.2}x", pts[1].speedup),
                format!("{:.2}x", pts[2].speedup),
                format!("{:.2}x", pts[3].speedup),
                format!("{:.0}%", pts[3].speedup / 8.0 * 100.0),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape: close-to-linear speedups up to 8 nodes — each");
    println!("node keeps a full graph replica, so only the gradient AllReduce");
    println!("crosses InfiniBand. (The paper's own headline: 80 GraphSage");
    println!("epochs on ogbn-papers100M in 66 s on 8 DGX-A100s.)");
}
