//! Table II — the evaluation datasets and our scaled stand-ins.

use wg_bench::{banner, bench_dataset, bench_scale, Table};
use wg_graph::DatasetKind;

fn main() {
    banner("Table II", "graph datasets used in evaluating WholeGraph");
    let mut t = Table::new(&[
        "graph",
        "paper nodes",
        "paper edges",
        "feat",
        "scale",
        "standin nodes",
        "standin edges",
        "avg deg",
    ]);
    for kind in DatasetKind::ALL {
        let (n, e, f) = kind.paper_stats();
        let d = bench_dataset(kind, 1);
        t.row(&[
            kind.name().to_string(),
            format!("{:.1}M", n as f64 / 1e6),
            format!(
                "{:.1}{}",
                if e >= 1_000_000_000 {
                    e as f64 / 1e9
                } else {
                    e as f64 / 1e6
                },
                if e >= 1_000_000_000 { "B" } else { "M" }
            ),
            f.to_string(),
            format!("1/{}", bench_scale(kind)),
            d.num_nodes().to_string(),
            d.num_edges().to_string(),
            format!("{:.1}", d.graph.avg_degree()),
        ]);
    }
    t.print();
    println!("\nStand-ins preserve average degree and feature width (the");
    println!("quantities per-batch data volumes depend on); ogbn graphs use");
    println!("learnable SBM structure, KONECT graphs use R-MAT power laws");
    println!("with random features, exactly as the paper randomizes them.");
}
