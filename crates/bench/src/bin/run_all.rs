//! Run every table/figure harness in sequence (convenience driver for
//! regenerating EXPERIMENTS.md). Equivalent to invoking each binary
//! individually; see README for the list.

use std::process::Command;

fn main() {
    let bins = [
        "table1_latency",
        "table2_datasets",
        "table3_accuracy",
        "table4_memory",
        "table5_epoch_time",
        "fig7_convergence",
        "fig8_bandwidth",
        "fig9_breakdown",
        "fig10_gather",
        "fig11_layers",
        "fig12_utilization",
        "fig13_scaling",
        "ablation_storage",
        "sweep_hyperparams",
        "wallclock",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin)).status().unwrap_or_else(|e| {
            panic!("failed to launch {bin}: {e} (build with --release -p wg-bench first)")
        });
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
