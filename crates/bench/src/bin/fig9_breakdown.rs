//! Figure 9 — epoch time breakdown (sampling / gathering / training) of
//! PyG, DGL and WholeGraph on ogbn-products and ogbn-papers100M for all
//! three models.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, overlap_mode, secs, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    let exec = overlap_mode();
    banner("Figure 9", "epoch time breakdown per framework");
    println!(
        "executor: {} (pass --overlap for the pipelined schedule)",
        exec.name()
    );
    for kind in [DatasetKind::OgbnProducts, DatasetKind::OgbnPapers100M] {
        let dataset = bench_dataset(kind, 31);
        println!("\n--- {} ---", kind.name());
        let mut t = Table::new(&[
            "framework",
            "model",
            "sampling (s)",
            "gather (s)",
            "training (s)",
            "total (s)",
            "input share",
        ]);
        for fw in [Framework::Pyg, Framework::Dgl, Framework::WholeGraph] {
            for model in ModelKind::ALL {
                let machine = Machine::dgx_a100();
                let cfg = bench_pipeline_config(fw, model)
                    .with_seed(31)
                    .with_exec(exec);
                let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
                let r = pipe.measure_epoch(0, 1);
                let input = (r.sample_time + r.gather_time) / r.epoch_time;
                t.row(&[
                    fw.name().to_string(),
                    model.name().to_string(),
                    secs(r.sample_time),
                    secs(r.gather_time),
                    secs(r.train_time + r.comm_time),
                    secs(r.epoch_time),
                    format!("{:.0}%", input * 100.0),
                ]);
            }
        }
        t.print();
    }
    println!("\nPaper shape: for PyG/DGL the sampling+gathering slices dominate");
    println!("(training is 'hardly seen'); for WholeGraph the input phases are");
    println!("much smaller than training.");
}
