//! Executed multi-node sweep — the evidence behind the §III-D scaling
//! claim, measured instead of projected. Builds a real [`MultiNode`]
//! cluster per node count (1 → 64), trains one epoch of GraphSage on the
//! ogbn-products stand-in, and writes `BENCH_multinode.json` with the
//! measured epoch times, speedups, halo and gradient-sync traffic, and
//! the N=1 equivalence checksum (the executed single-node epoch must be
//! bit-identical to a plain [`Pipeline::train_epoch`]).
//!
//! `--trace <out.json>` additionally records a 4-node cluster epoch with
//! span tracing on and writes the merged Chrome trace (one process per
//! node) — the per-phase comm/compute occupancy evidence.
//!
//! One GPU per node isolates node-count scaling from intra-node wave
//! quantization: the single-node epoch has ~30 waves, so each doubling
//! of nodes genuinely halves the critical path until the inter-node
//! AllReduce overhead bites at high node counts.

use std::sync::Arc;

use wg_bench::{banner, Table};
use wg_graph::{DatasetKind, SyntheticDataset};
use wholegraph::multinode::{executed_sweep, ExecutedPoint, MultiNode};
use wholegraph::prelude::*;

const NODE_COUNTS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// FNV-1a over a word stream (same witness the wallclock bench pins).
fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        h = (h ^ w).wrapping_mul(0x100000001b3);
    }
    h
}

/// The N=1 equivalence witness: loss, accuracy and epoch-time bits.
fn epoch_checksum(loss: f32, accuracy: f64, epoch_time: SimTime) -> u64 {
    fnv1a(
        [
            loss.to_bits() as u64,
            accuracy.to_bits(),
            epoch_time.as_secs().to_bits(),
        ]
        .into_iter(),
    )
}

fn dataset() -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        400,
        7,
    ))
}

/// The swept pipeline config. The cache defaults to pinned *off* (not
/// the environment) so the committed artifact never depends on ambient
/// `WG_CACHE_*`; `--cache-rows`/`--cache-mode` turn it on for both the
/// single-pipeline witness and every cluster replica — N=1 equivalence
/// must hold at any cache setting.
fn pipe_cfg(cache: Option<(usize, CacheMode)>) -> PipelineConfig {
    let (rows, mode) = cache.unwrap_or((0, CacheMode::Static));
    let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(7)
        .with_cache(rows, mode);
    cfg.batch_size = 16;
    cfg
}

fn point_json(p: &ExecutedPoint) -> String {
    let r = &p.report;
    let halo_bytes: u64 = r.per_node.iter().map(|n| n.halo_bytes).sum();
    let halo_rows: u64 = r.per_node.iter().map(|n| n.halo_rows).sum();
    // Critical-path comm and occupancy come from the slowest node's
    // report (the one that sets the cluster epoch time).
    let slowest = r
        .per_node
        .iter()
        .filter_map(|n| n.report)
        .max_by(|a, b| a.epoch_time.as_secs().total_cmp(&b.epoch_time.as_secs()))
        .expect("sweep points train at least one node");
    format!(
        "    {{\"nodes\": {}, \"epoch_time_s\": {:.9}, \"speedup\": {:.4}, \
         \"efficiency\": {:.4}, \"loss\": {:.6}, \"train_accuracy\": {:.6}, \
         \"iterations\": {}, \"waves\": {}, \"comm_s\": {:.9}, \"occupancy\": {:.4}, \
         \"halo_rows\": {halo_rows}, \"halo_bytes\": {halo_bytes}, \
         \"sync_bytes\": {}, \"sync_time_s\": {:.9}, \"cut_fraction\": {:.4}}}",
        p.nodes,
        p.epoch_time.as_secs(),
        p.speedup,
        p.efficiency,
        r.loss,
        r.train_accuracy,
        r.executed_iterations,
        r.waves,
        slowest.comm_time.as_secs(),
        slowest.occupancy.utilization(),
        r.sync_bytes,
        r.sync_time.as_secs(),
        p.cut_fraction,
    )
}

fn main() {
    banner(
        "multi-node sweep",
        "executed data-parallel scaling, 1 -> 64 nodes",
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let cache = args
        .iter()
        .position(|a| a == "--cache-rows")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            let rows: usize = v.parse().expect("--cache-rows expects a row count");
            let mode = args
                .iter()
                .position(|a| a == "--cache-mode")
                .and_then(|i| args.get(i + 1))
                .map_or(CacheMode::Static, |m| {
                    CacheMode::parse(m).expect("--cache-mode expects static|clock")
                });
            (rows, mode)
        });
    if let Some((rows, mode)) = cache {
        println!("feature cache: {rows} rows/device, {} mode", mode.as_str());
    }

    let ds = dataset();
    println!(
        "dataset: ogbn-products stand-in at 1/400 — {} nodes, {} train; batch 16, 1 GPU/node\n",
        ds.num_nodes(),
        ds.train.len()
    );

    // The N=1 equivalence witness: a plain single pipeline runs the same
    // epoch; the executed cluster at N=1 must reproduce its numbers bit
    // for bit.
    let machine = Machine::new(MachineConfig::dgx_like(1));
    let mut single =
        Pipeline::new(machine, Arc::clone(&ds), pipe_cfg(cache)).expect("single pipeline");
    let s = single.train_epoch(0);
    let single_sum = epoch_checksum(s.loss, s.train_accuracy, s.epoch_time);

    let points = executed_sweep(
        Arc::clone(&ds),
        pipe_cfg(cache),
        MultiNodeConfig::new(1).with_gpus(1),
        &NODE_COUNTS,
    )
    .expect("sweep");

    let n1 = &points[0].report;
    let n1_sum = epoch_checksum(n1.loss, n1.train_accuracy, n1.epoch_time);
    let bit_identical = n1_sum == single_sum;
    assert!(
        bit_identical,
        "executed N=1 diverged from the single pipeline: {n1_sum:016x} != {single_sum:016x}"
    );

    let mut t = Table::new(&[
        "nodes",
        "epoch",
        "speedup",
        "efficiency",
        "loss",
        "halo MB",
        "sync KB",
        "cut",
    ]);
    for p in &points {
        let halo_bytes: u64 = p.report.per_node.iter().map(|n| n.halo_bytes).sum();
        t.row(&[
            p.nodes.to_string(),
            format!("{}", p.epoch_time),
            format!("{:.2}x", p.speedup),
            format!("{:.0}%", p.efficiency * 100.0),
            format!("{:.4}", p.report.loss),
            format!("{:.2}", halo_bytes as f64 / 1e6),
            format!("{:.1}", p.report.sync_bytes as f64 / 1e3),
            format!("{:.0}%", p.cut_fraction * 100.0),
        ]);
    }
    t.print();
    println!("\nN=1 equivalence: executed == single pipeline ({n1_sum:016x})");

    if let Some(path) = &trace_path {
        // A 4-node traced epoch: one Chrome process per node, per-phase
        // busy/idle spans per GPU.
        wg_trace::enable_all();
        let mut mn = MultiNode::new(
            Arc::clone(&ds),
            pipe_cfg(cache),
            MultiNodeConfig::new(4).with_gpus(1),
        )
        .expect("traced cluster");
        mn.train_epoch(0);
        wg_trace::disable_all();
        let machines = mn.machines();
        wholegraph::observability::write_cluster_chrome_trace(path, &machines)
            .expect("write cluster trace");
        println!("cluster chrome trace written to {path} (one process per node)");
    }

    let points_json: Vec<String> = points.iter().map(point_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"wg-multinode-sweep-v1\",\n  \"dataset\": \"ogbn-products\",\n  \
         \"scale\": 400,\n  \"seed\": 7,\n  \"batch_size\": 16,\n  \"gpus_per_node\": 1,\n  \
         \"n1\": {{\"bit_identical\": {bit_identical}, \"checksum\": \"{n1_sum:016x}\", \
         \"single_checksum\": \"{single_sum:016x}\"}},\n  \"points\": [\n{}\n  ]\n}}\n",
        points_json.join(",\n")
    );
    std::fs::write("BENCH_multinode.json", &json).expect("write BENCH_multinode.json");
    println!("Wrote BENCH_multinode.json");
}
