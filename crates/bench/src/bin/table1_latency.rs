//! Table I — UM vs GPUDirect P2P access latency.
//!
//! Reproduces the paper's pointer-chase experiment: one thread walks a
//! dependency chain of random addresses across a distributed allocation of
//! 8–128 GB (logical); every access is charged the mode's dependent-load
//! latency. Paper values are printed beside the measured ones.

use wg_bench::{banner, Table};
use wg_mem::probe::pointer_chase;
use wg_sim::cost::AccessMode;
use wg_sim::CostModel;

fn main() {
    banner("Table I", "UM and GPUDirect P2P memory access latency");
    let model = CostModel::dgx_a100();
    const GB: u64 = 1 << 30;
    // Paper Table I, in µs.
    let paper = [
        (8u64, 20.8, 1.35),
        (16, 29.6, 1.37),
        (32, 32.5, 1.43),
        (64, 35.3, 1.51),
        (128, 35.8, 1.56),
    ];

    let mut t = Table::new(&["size (GB)", "UM (us)", "UM paper", "P2P (us)", "P2P paper"]);
    for (gb, um_paper, p2p_paper) in paper {
        // 100K dependent accesses as in the paper; the walked array is a
        // scaled 64K-row cycle, the latency model sees the logical size.
        let um = pointer_chase(
            &model,
            AccessMode::UnifiedMemory,
            gb * GB,
            1 << 16,
            100_000,
            gb,
        );
        let p2p = pointer_chase(
            &model,
            AccessMode::PeerAccess,
            gb * GB,
            1 << 16,
            100_000,
            gb,
        );
        t.row(&[
            gb.to_string(),
            format!("{:.1}", um.avg_latency.as_micros()),
            format!("{um_paper:.1}"),
            format!("{:.2}", p2p.avg_latency.as_micros()),
            format!("{p2p_paper:.2}"),
        ]);
    }
    t.print();
    println!("\nP2P access is handled by hardware over NVLink (~1.4 us);");
    println!("UM takes a page fault serviced by the host (~20-36 us).");
}
