//! Table III — validation/test accuracy of PyG, DGL and WholeGraph on the
//! two learnable stand-ins, for all three models.
//!
//! All frameworks share seeds, so they sample the same sub-graphs and
//! compute the same training — the accuracy columns must (and do) agree,
//! which is the point of the paper's table. Set `WG_EPOCHS` to override
//! the default epoch count.

use wg_bench::{banner, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    banner("Table III", "validation and test accuracy parity");
    let epochs: u64 = std::env::var("WG_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("training {epochs} epochs per cell (WG_EPOCHS to override)\n");

    let mut t = Table::new(&[
        "dataset",
        "model",
        "framework",
        "valid",
        "test",
        "paper valid",
        "paper test",
    ]);
    // Paper Table III values for reference.
    let paper = |kind: DatasetKind, model: ModelKind, fw: Framework| -> (f64, f64) {
        use DatasetKind::*;
        use Framework::*;
        use ModelKind::*;
        match (kind, model, fw) {
            (OgbnProducts, Gcn, Dgl) => (91.09, 78.02),
            (OgbnProducts, Gcn, Pyg) => (91.41, 76.86),
            (OgbnProducts, Gcn, WholeGraph) => (91.51, 78.46),
            (OgbnProducts, GraphSage, Dgl) => (91.30, 77.73),
            (OgbnProducts, GraphSage, Pyg) => (92.33, 78.29),
            (OgbnProducts, GraphSage, WholeGraph) => (92.02, 78.25),
            (OgbnProducts, Gat, Dgl) => (89.97, 77.55),
            (OgbnProducts, Gat, Pyg) => (90.77, 78.72),
            (OgbnProducts, Gat, WholeGraph) => (90.58, 78.16),
            (OgbnPapers100M, Gcn, Dgl) => (66.17, 63.73),
            (OgbnPapers100M, Gcn, Pyg) => (65.55, 63.19),
            (OgbnPapers100M, Gcn, WholeGraph) => (65.98, 63.41),
            (OgbnPapers100M, GraphSage, Dgl) => (68.28, 65.25),
            (OgbnPapers100M, GraphSage, Pyg) => (68.28, 65.16),
            (OgbnPapers100M, GraphSage, WholeGraph) => (68.14, 64.94),
            (OgbnPapers100M, Gat, Dgl) => (67.79, 64.71),
            (OgbnPapers100M, Gat, Pyg) => (68.33, 65.10),
            (OgbnPapers100M, Gat, WholeGraph) => (68.21, 65.21),
            _ => (f64::NAN, f64::NAN),
        }
    };

    for (kind, scale) in [
        (DatasetKind::OgbnProducts, 600),
        (DatasetKind::OgbnPapers100M, 20_000),
    ] {
        let dataset = wg_bench::hard_accuracy_dataset(kind, scale, 55);
        for model in ModelKind::ALL {
            for fw in [Framework::Dgl, Framework::Pyg, Framework::WholeGraph] {
                let machine = Machine::dgx_a100();
                let cfg = PipelineConfig {
                    hidden: 96,
                    num_layers: 2,
                    heads: 4,
                    fanouts: vec![15, 15],
                    batch_size: 256,
                    dropout: 0.2,
                    lr: 5e-3,
                    ..PipelineConfig::tiny(fw, model)
                }
                .with_seed(55);
                let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
                let out = Trainer::new(TrainerConfig {
                    epochs,
                    eval_every: 0,
                    patience: None,
                })
                .run(&mut pipe);
                let (pv, pt) = paper(kind, model, fw);
                t.row(&[
                    kind.name().to_string(),
                    model.name().to_string(),
                    fw.name().to_string(),
                    format!("{:.2}%", out.val_accuracy * 100.0),
                    format!("{:.2}%", out.test_accuracy * 100.0),
                    format!("{pv:.2}%"),
                    format!("{pt:.2}%"),
                ]);
            }
        }
    }
    t.print();
    println!("\nShape check: within each (dataset, model) group the three");
    println!("frameworks agree to within a couple of points, as in the paper.");
    println!("Absolute values reflect the SBM stand-in's difficulty, not OGB's.");
}
