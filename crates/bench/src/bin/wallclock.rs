//! Wall-clock harness for the work-stealing pool — the one harness that
//! measures *host* time, not simulated device time. Each kernel family
//! (sampling, gather, g-SpMM forward+backward, an end-to-end training
//! epoch) runs twice: once pinned to the sequential reference schedule
//! (`rayon::run_sequential`) and once on the pool at its configured
//! width. Outputs must be bit-identical — the speedup is only reportable
//! because the numerics provably did not move. Results are printed and
//! written to `BENCH_wallclock.json`.
//!
//! On a single-core runner the speedups degenerate to ~1.0x; the JSON
//! records `threads` and `cores` so readers can tell.
//!
//! The harness also runs under a counting global allocator and reports
//! `allocs_per_batch` for every bench: the minimum number of heap
//! allocations observed across the (already warm) pool-schedule repeats.
//! For the sampling bench this must be **zero** — the scratch-arena hot
//! path's contract — and the harness asserts it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_bench::{banner, bench_dataset, Table};
use wg_graph::{DatasetKind, MultiGpuGraph};
use wg_mem::{
    global_gather_planned, global_gather_planned_cached, plan_gather, plan_gather_cached,
    CacheMode, FeatureCache, RowPlan,
};
use wg_sample::{
    sample_minibatch_into, GraphAccess, MiniBatch, MultiGpuAccess, SampleScratch, SamplerConfig,
};
use wg_tensor::sparse::{spmm_backward_src_into, spmm_into, ReverseScratch};
use wg_tensor::{Agg, BlockCsr, Matrix};
use wholegraph::prelude::*;

/// Global allocation counter (all threads, pool workers included).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation counter in front: the witness that
/// the sampling hot path performs zero steady-state heap allocations.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Repeats under the sequential reference schedule.
const REPEATS: usize = 3;
/// Repeats on the pool — a couple more, since the pool timings feed the
/// reported speedup and the steady-state allocation minimum.
const POOL_REPEATS: usize = 5;

/// FNV-1a over a word stream: the bit-exactness witness for each kernel.
fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = wg_tensor::simd::FNV_OFFSET;
    for w in words {
        h = (h ^ w).wrapping_mul(wg_tensor::simd::FNV_PRIME);
    }
    h
}

/// `f32` checksums run through the unrolled chain in `wg_tensor::simd` —
/// byte-identical to [`fnv1a`] over the same bit stream (the chain is
/// order-serial, so the unroll only hoists the float→word conversions).
fn checksum_f32(data: &[f32]) -> u64 {
    wg_tensor::simd::fnv1a_f32(wg_tensor::simd::FNV_OFFSET, data)
}

/// One timed run of a bench's workload.
struct RunOut {
    elapsed: Duration,
    checksum: u64,
    /// Simulated device time for the same work, where one exists.
    sim: Option<SimTime>,
    /// Host wall-clock split across the pipeline stages (epoch bench).
    stages: Option<[Duration; 3]>,
}

struct Measurement {
    name: &'static str,
    t1: Duration,
    tn: Duration,
    checksum: u64,
    /// Minimum heap allocations over the warm pool-schedule repeats.
    allocs: u64,
    /// Logical batches per run (divides `allocs` into a per-batch figure).
    batches: u64,
    sim: Option<SimTime>,
    stages: Option<[Duration; 3]>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.t1.as_secs_f64() / self.tn.as_secs_f64().max(1e-12)
    }

    fn allocs_per_batch(&self) -> u64 {
        self.allocs / self.batches.max(1)
    }
}

/// Run `work` once as an untimed warm-up (filling every pooled buffer),
/// then `REPEATS` times under the sequential reference schedule and
/// `POOL_REPEATS` times on the pool; keep the best time of each and
/// insist the checksums never differ between (or within) the two
/// schedules. The minimum pool-repeat allocation count is the
/// steady-state figure.
fn measure(name: &'static str, batches: u64, mut work: impl FnMut() -> RunOut) -> Measurement {
    let warm = work();
    let mut best = |sequential: bool, repeats: usize| {
        let mut t = Duration::MAX;
        let mut sum = None;
        let mut sim = None;
        let mut stages = None;
        let mut allocs = u64::MAX;
        for _ in 0..repeats {
            let a0 = ALLOCS.load(Ordering::Relaxed);
            let r = if sequential {
                rayon::run_sequential(&mut work)
            } else {
                work()
            };
            let a = ALLOCS.load(Ordering::Relaxed) - a0;
            assert_eq!(
                *sum.get_or_insert(r.checksum),
                r.checksum,
                "{name}: run-to-run divergence"
            );
            t = t.min(r.elapsed);
            allocs = allocs.min(a);
            sim = r.sim;
            stages = r.stages;
        }
        (t, sum.unwrap(), sim, stages, allocs)
    };
    let (t1, c1, sim, _, _) = best(true, REPEATS);
    let (tn, cn, _, stages, allocs) = best(false, POOL_REPEATS);
    assert_eq!(c1, cn, "{name}: parallel result differs from sequential");
    assert_eq!(warm.checksum, c1, "{name}: warm-up run diverged");
    Measurement {
        name,
        t1,
        tn,
        checksum: c1,
        allocs,
        batches,
        sim,
        stages,
    }
}

/// Mini-batch sampling (Algorithm 1 + AppendUnique) over the DSM store.
fn bench_sample() -> Measurement {
    let dataset = bench_dataset(DatasetKind::OgbnProducts, 11);
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &dataset.graph,
        &dataset.features,
        dataset.feature_dim,
        &machine.memory(),
    )
    .unwrap();
    let access = MultiGpuAccess::new(&store);
    let batch: Vec<u64> = dataset
        .train
        .iter()
        .take(1024)
        .map(|&v| access.handle_of(v))
        .collect();
    let cfg = SamplerConfig {
        fanouts: vec![30, 30, 30],
        seed: 17,
    };
    let mut scratch = SampleScratch::default();
    let mut mb = MiniBatch::empty();
    measure("sample", 1, move || {
        let start = Instant::now();
        sample_minibatch_into(&access, &batch, &cfg, 0, 0, &mut scratch, &mut mb);
        let elapsed = start.elapsed();
        let words = mb.blocks.iter().flat_map(|b| {
            (b.offsets.iter().map(|&x| x as u64))
                .chain(b.indices.iter().map(|&x| x as u64))
                .chain(b.dup_count.iter().map(|&x| x as u64))
        });
        let frontier_words = mb.frontiers.iter().flatten().copied();
        RunOut {
            elapsed,
            checksum: fnv1a(words.chain(frontier_words)),
            sim: None,
            stages: None,
        }
    })
}

/// Training-shaped feature gather from the distributed store. With a
/// cache configured (`--cache-rows`/`--cache-mode`), planning consults a
/// per-device [`FeatureCache`] first — static mode ranks rows by the
/// *observed access frequency* of the bench's own index stream (the
/// paper's hotness signal at its purest), CLOCK warms dynamically. The
/// checksum must not move: caching changes cost, never values, and the
/// zero-allocation budget must hold with the cache in the loop.
fn bench_gather(cache: Option<(usize, CacheMode)>) -> Measurement {
    let dataset = bench_dataset(DatasetKind::OgbnProducts, 5);
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &dataset.graph,
        &dataset.features,
        dataset.feature_dim,
        &machine.memory(),
    )
    .unwrap();
    let n = dataset.num_nodes();
    let mut rng = SmallRng::seed_from_u64(9);
    let rows: Vec<usize> = (0..(8 * n / 5))
        .map(|_| store.feature_row(rng.gen_range(0..n as u64)))
        .collect();
    let width = dataset.feature_dim;
    let spec = machine.spec(wg_sim::DeviceId::Gpu(0)).clone();
    let mut out = vec![0.0f32; rows.len() * width];
    let mut plan = RowPlan::default();
    let mut fc = cache.map(|(slots, mode)| match mode {
        CacheMode::Static => {
            let mut freq = vec![0u64; store.features().rows()];
            for &r in &rows {
                freq[r] += 1;
            }
            FeatureCache::new_static(store.features(), &freq, slots)
        }
        CacheMode::Clock => FeatureCache::new_clock(store.features(), machine.num_gpus(), slots),
    });
    measure("gather", 1, move || {
        let start = Instant::now();
        let stats = if let Some(c) = fc.as_mut() {
            plan_gather_cached(store.features(), &rows, &mut plan, c, 0);
            global_gather_planned_cached(
                store.features(),
                &plan,
                &mut out,
                0,
                machine.cost(),
                &spec,
                c,
            )
        } else {
            plan_gather(store.features(), &rows, &mut plan);
            global_gather_planned(store.features(), &plan, &mut out, 0, machine.cost(), &spec)
        };
        RunOut {
            elapsed: start.elapsed(),
            checksum: checksum_f32(&out),
            sim: Some(stats.sim_time),
            stages: None,
        }
    })
}

/// g-SpMM forward + deterministic backward on a synthetic sampled block.
fn bench_spmm() -> Measurement {
    let (num_dst, num_src, channels) = (2048usize, 4096usize, 64usize);
    let mut rng = SmallRng::seed_from_u64(41);
    let mut offsets = vec![0u32; num_dst + 1];
    let mut indices = Vec::new();
    for d in 0..num_dst {
        for _ in 0..rng.gen_range(4..=24) {
            indices.push(rng.gen_range(0..num_src as u32));
        }
        offsets[d + 1] = indices.len() as u32;
    }
    let mut dup_count = vec![0u32; num_src];
    for &s in &indices {
        dup_count[s as usize] += 1;
    }
    let block = BlockCsr {
        num_dst,
        num_src,
        offsets,
        indices,
        dup_count,
    };
    let src = Matrix::from_vec(
        num_src,
        channels,
        (0..num_src * channels)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    );
    let mut y = Matrix::empty();
    let mut g = Matrix::empty();
    let mut rev = ReverseScratch::default();
    measure("spmm", 1, move || {
        let start = Instant::now();
        spmm_into(&block, &src, None, 1, Agg::Mean, &mut y);
        spmm_backward_src_into(&block, &y, None, 1, Agg::Mean, &mut g, &mut rev);
        let elapsed = start.elapsed();
        let c = fnv1a(
            (y.data().iter().map(|v| v.to_bits() as u64))
                .chain(g.data().iter().map(|v| v.to_bits() as u64)),
        );
        RunOut {
            elapsed,
            checksum: c,
            sim: None,
            stages: None,
        }
    })
}

/// End-to-end training epoch through the full WholeGraph pipeline. The
/// pipeline is built **once**; each repetition calls
/// `reset_training_state` (bit-exact parameter/optimizer/clock restore)
/// and re-trains the same epoch against the warm scratch pools — so the
/// allocation count is the steady-state training-loop figure, and the
/// checksum doubles as proof the replay is bit-identical to a cold start.
/// Also reports the *simulated* device epoch time and the host wall-clock
/// split across the sample/gather/train stages.
///
/// With `--trace <file>`, the last repetition's simulated device
/// intervals are merged with the drained host spans into a Chrome trace.
fn bench_epoch(
    trace: Option<&str>,
    cache: Option<(usize, CacheMode)>,
    storage: Option<usize>,
) -> Measurement {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        300,
        8,
    ));
    let machine = Machine::new(MachineConfig::dgx_like(4));
    // Default to the cache and storage tiers pinned *off* (not the
    // environment) so the published checksum and timings never depend on
    // ambient WG_CACHE_* / WG_STORAGE_BUDGET_ROWS. With `--storage-rows`
    // the epoch runs through the out-of-core tier — the pinned checksum
    // must not move (values never move; only simulated cost does).
    let (cache_rows, cache_mode) = cache.unwrap_or((0, CacheMode::Static));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(3)
        .with_cache(cache_rows, cache_mode)
        .with_storage(storage.unwrap_or(0));
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
    let batches = pipe.iters_per_epoch() as u64;
    let m = measure("epoch", batches, || {
        pipe.reset_training_state();
        let start = Instant::now();
        let (r, stages) = pipe.train_epoch_timed(0);
        let elapsed = start.elapsed();
        // Numerics only — deliberately *excluding* `epoch_time`: the
        // feature cache (and any future cost-layer change) moves
        // simulated time without touching a single trained bit, and this
        // checksum is the pinned witness of exactly that invariant.
        let c = fnv1a([r.loss.to_bits() as u64, r.train_accuracy.to_bits()].into_iter());
        RunOut {
            elapsed,
            checksum: c,
            sim: Some(r.epoch_time),
            stages: Some(stages),
        }
    });
    if let Some(path) = trace {
        wholegraph::observability::write_chrome_trace(path, pipe.machine())
            .expect("write chrome trace");
        println!("chrome trace written to {path} (chrome://tracing / ui.perfetto.dev)");
    }
    m
}

fn main() {
    banner("Wallclock", "host-side speedup of the work-stealing pool");
    let threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("pool threads: {threads}   host cores: {cores}");
    println!("(every kernel is checked bit-identical between schedules)\n");

    // Spans + metrics run *enabled* throughout: the allocation budgets
    // below are asserted with observability on, which is the crate's
    // zero-steady-state-overhead claim made checkable. (Per-thread ring
    // buffers and metric names intern during the untimed warm-up run;
    // warm repeats allocate nothing.)
    wg_trace::enable_all();
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cache = args
        .iter()
        .position(|a| a == "--cache-rows")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            let rows: usize = v.parse().expect("--cache-rows expects a row count");
            let mode = args
                .iter()
                .position(|a| a == "--cache-mode")
                .and_then(|i| args.get(i + 1))
                .map_or(CacheMode::Static, |m| {
                    CacheMode::parse(m).expect("--cache-mode expects static|clock")
                });
            (rows, mode)
        });
    let storage = args
        .iter()
        .position(|a| a == "--storage-rows")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<usize>()
                .expect("--storage-rows expects a row count")
        });
    if let Some((rows, mode)) = cache {
        println!(
            "feature cache: {} rows/device, {} mode\n",
            rows,
            mode.as_str()
        );
    }
    if let Some(rows) = storage {
        println!("out-of-core tier: {rows} DSM-resident rows (epoch bench)\n");
    }

    let results = [
        bench_sample(),
        bench_gather(cache),
        bench_spmm(),
        bench_epoch(trace_path.as_deref(), cache, storage),
    ];

    // Steady-state allocation budgets (per batch, warm pools): the
    // scratch-arena / workspace contract for each hot path.
    // The epoch budget is the measured steady-state figure (9/batch with
    // warm pools); cache lookups and CLOCK maintenance must stay inside
    // it — the cache's hot path is allocation-free by contract.
    for (name, budget) in [("sample", 0), ("gather", 0), ("spmm", 0), ("epoch", 9)] {
        let m = results
            .iter()
            .find(|m| m.name == name)
            .expect("bench present");
        assert!(
            m.allocs_per_batch() <= budget,
            "{name} hot path allocated {} times per warm batch (budget {budget})",
            m.allocs_per_batch()
        );
    }

    let tn_header = format!("{threads}-thread (ms)");
    let mut t = Table::new(&[
        "kernel",
        "1-thread (ms)",
        tn_header.as_str(),
        "speedup",
        "allocs/batch",
        "sim device time",
    ]);
    for m in &results {
        t.row(&[
            m.name.to_string(),
            format!("{:.2}", m.t1.as_secs_f64() * 1e3),
            format!("{:.2}", m.tn.as_secs_f64() * 1e3),
            format!("{:.2}x", m.speedup()),
            m.allocs_per_batch().to_string(),
            m.sim
                .map_or_else(|| "-".to_string(), |s| format!("{:.3} ms", s.as_millis())),
        ]);
    }
    t.print();
    if let Some(stages) = results.iter().find_map(|m| m.stages) {
        let total: f64 = stages.iter().map(Duration::as_secs_f64).sum();
        println!(
            "\nepoch host-time split: sample {:.2} ms ({:.0}%), gather {:.2} ms ({:.0}%), \
             train {:.2} ms ({:.0}%)",
            stages[0].as_secs_f64() * 1e3,
            stages[0].as_secs_f64() / total.max(1e-12) * 100.0,
            stages[1].as_secs_f64() * 1e3,
            stages[1].as_secs_f64() / total.max(1e-12) * 100.0,
            stages[2].as_secs_f64() * 1e3,
            stages[2].as_secs_f64() / total.max(1e-12) * 100.0,
        );
    }

    let benches: Vec<String> = results
        .iter()
        .map(|m| {
            let stages = m.stages.map_or_else(String::new, |s| {
                format!(
                    ", \"stages\": {{\"sample_ms\": {:.4}, \"gather_ms\": {:.4}, \
                     \"train_ms\": {:.4}}}",
                    s[0].as_secs_f64() * 1e3,
                    s[1].as_secs_f64() * 1e3,
                    s[2].as_secs_f64() * 1e3
                )
            });
            format!(
                "    {{\"name\": \"{}\", \"t1_ms\": {:.4}, \"tn_ms\": {:.4}, \
                 \"speedup\": {:.4}, \"allocs_per_batch\": {}, \"batches\": {}, \
                 \"checksum\": \"{:016x}\"{stages}}}",
                m.name,
                m.t1.as_secs_f64() * 1e3,
                m.tn.as_secs_f64() * 1e3,
                m.speedup(),
                m.allocs_per_batch(),
                m.batches,
                m.checksum
            )
        })
        .collect();
    // Cumulative metrics over every run of every bench (warm-up,
    // sequential reference and pool repeats alike) — the registry totals,
    // same shape `wg_trace::metrics::Snapshot::to_json` documents.
    let metrics = wg_trace::metrics::snapshot().to_json();
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \
         \"bit_identical\": true,\n  \"benches\": [\n{}\n  ],\n  \
         \"metrics\": {metrics}\n}}\n",
        benches.join(",\n")
    );
    std::fs::write("BENCH_wallclock.json", &json).expect("write BENCH_wallclock.json");
    println!("\nWrote BENCH_wallclock.json");
    if threads > 1 && cores > 1 {
        println!("Expect >=2x on the parallel kernels with {threads} threads.");
    } else {
        println!("Single-threaded environment: speedups are ~1.0x by construction.");
    }
}
