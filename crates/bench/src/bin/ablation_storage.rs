//! Ablation — where the features live (the §I design space + §II-B):
//! WholeGraph with GPU+P2P features vs GPU+Unified-Memory features vs
//! host zero-copy, against the DGL baseline's CPU-gather-then-copy.
//!
//! All variants compute identical training; only the gather path changes.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, secs, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    banner(
        "Ablation",
        "feature placement: P2P vs UM vs host zero-copy vs CPU gather",
    );
    let dataset = bench_dataset(DatasetKind::OgbnPapers100M, 41);
    let mut t = Table::new(&["variant", "gather/epoch (s)", "epoch (s)", "vs P2P"]);
    let mut base = None;
    let variants: Vec<(String, Framework, FeaturePlacement)> = vec![
        (
            "WholeGraph GPU+P2P".into(),
            Framework::WholeGraph,
            FeaturePlacement::DeviceP2p,
        ),
        (
            "WholeGraph host zero-copy".into(),
            Framework::WholeGraph,
            FeaturePlacement::HostMapped,
        ),
        (
            "WholeGraph GPU+UM".into(),
            Framework::WholeGraph,
            FeaturePlacement::DeviceUnifiedMemory,
        ),
        (
            "DGL (CPU gather + copy)".into(),
            Framework::Dgl,
            FeaturePlacement::DeviceP2p,
        ),
    ];
    for (label, fw, placement) in variants {
        let machine = Machine::dgx_a100();
        let cfg = bench_pipeline_config(fw, ModelKind::GraphSage)
            .with_seed(41)
            .with_feature_placement(placement);
        let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
        let r = pipe.measure_epoch(0, 1);
        let baseline = *base.get_or_insert(r.epoch_time);
        t.row(&[
            label,
            secs(r.gather_time),
            secs(r.epoch_time),
            format!("{:.2}x", r.epoch_time / baseline),
        ]);
    }
    t.print();
    println!("\nThe paper's argument in one table: P2P distributed shared");
    println!("memory is the only placement whose gather keeps up with the");
    println!("GPU; UM page faults are catastrophic (Table I), and both");
    println!("host-side placements press on shared PCIe (§I, §II-B).");
}
