//! Figure 11 — epoch breakdown with third-party layer implementations on
//! top of WholeGraph's sampling and gather: WholeGraph+PyG vs
//! WholeGraph+DGL vs WholeGraph native layers.

use wg_bench::{banner, bench_dataset, bench_pipeline_config, secs, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    banner(
        "Figure 11",
        "layer providers on top of WholeGraph sampling/gather",
    );
    for kind in [DatasetKind::OgbnProducts, DatasetKind::OgbnPapers100M] {
        let dataset = bench_dataset(kind, 13);
        println!("\n--- {} ---", kind.name());
        let mut t = Table::new(&[
            "model",
            "layers",
            "sampling (s)",
            "gather (s)",
            "training (s)",
            "total (s)",
            "native speedup",
        ]);
        for model in ModelKind::ALL {
            let mut native_total = None;
            let mut rows = Vec::new();
            for provider in [
                LayerProvider::PygLayers,
                LayerProvider::DglLayers,
                LayerProvider::WholeGraphNative,
            ] {
                let machine = Machine::dgx_a100();
                let cfg = bench_pipeline_config(Framework::WholeGraph, model)
                    .with_seed(13)
                    .with_provider(provider);
                let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
                let r = pipe.measure_epoch(0, 1);
                if provider == LayerProvider::WholeGraphNative {
                    native_total = Some(r.epoch_time);
                }
                rows.push((provider, r));
            }
            let native = native_total.unwrap();
            for (provider, r) in rows {
                t.row(&[
                    model.name().to_string(),
                    provider.name().to_string(),
                    secs(r.sample_time),
                    secs(r.gather_time),
                    secs(r.train_time + r.comm_time),
                    secs(r.epoch_time),
                    format!("{:.2}x", r.epoch_time / native),
                ]);
            }
        }
        t.print();
    }
    println!("\nPaper shape: WholeGraph's sampling+gather eliminate the input");
    println!("bottleneck for every provider (GPU utilization ~95% even with");
    println!("PyG/DGL layers); native layers win up to ~1.31x over +DGL and");
    println!("~2.43x over +PyG end-to-end.");
}
