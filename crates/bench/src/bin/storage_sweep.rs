//! Residency-fraction sweep over the out-of-core storage tier — the
//! evidence behind ROADMAP item 1's disk tier. Runs the wallclock
//! harness's epoch workload shape (ogbn-products stand-in at 1/300 with
//! the power-law degree profile, tiny GraphSage, 4 simulated GPUs) once
//! with the tier off and then with only a fraction of the feature rows
//! DSM-resident (100% → 10%), and writes `BENCH_storage.json` with
//! per-point disk traffic, NVMe time (blocking vs prefetch-overlapped),
//! and epoch times.
//!
//! Three invariants make the artifact gateable (`check_bench storage`):
//!
//! * **Values never move** — every point's loss/accuracy bits equal the
//!   tier-off baseline's, even though the non-resident rows genuinely
//!   round-trip through the spill file. Tiering changes cost, never
//!   numerics.
//! * **Bytes are conserved** — each point's gathered bytes split exactly
//!   into DSM-served and disk-served: `storage_bytes + dsm_bytes`
//!   equals the baseline's `algo_bytes`. No row is dropped or fetched
//!   twice at the accounting layer.
//! * **Prefetch overlaps** — the storage time left exposed after
//!   double-buffering each wave's NVMe reads against the previous
//!   wave's compute is *strictly* below the blocking sum whenever the
//!   tier actually serves rows from disk.
//!
//! Each configuration trains two epochs and reports the *second*, with
//! per-point traffic numbers taken as metric-registry deltas over
//! exactly that epoch. The feature cache is pinned off throughout so the
//! DSM/disk split is not confounded by a third tier.

use std::sync::Arc;

use wg_bench::{banner, Table};
use wg_graph::{DatasetKind, DegreeProfile, SyntheticDataset};
use wholegraph::prelude::*;

/// DSM residency fractions swept, largest first. 1.0 keeps everything
/// resident (the tier is built but never read — its cost must be zero);
/// the 0.5 and smaller points must show the prefetch-overlap win.
const FRACTIONS: [f64; 4] = [1.0, 0.5, 0.25, 0.1];

/// One swept configuration's measurements (`frac` < 0 = tier-off
/// baseline).
struct Point {
    frac: f64,
    budget_rows: usize,
    /// Rows gathered over the measured epoch (all tiers combined).
    rows: u64,
    algo_bytes: u64,
    bus_bytes: u64,
    /// Rows / bytes served from the spill file.
    storage_rows: u64,
    storage_bytes: u64,
    /// NVMe time charged as if every prefetch blocked its gather.
    blocking: SimTime,
    /// NVMe time left exposed after per-wave prefetch overlap.
    exposed: SimTime,
    epoch_time: SimTime,
    gather_time: SimTime,
    loss_bits: u32,
    accuracy_bits: u64,
}

/// Counter value by exact name, zero when the counter never fired.
fn counter(snap: &wg_trace::metrics::Snapshot, name: &str) -> f64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0.0, |&(_, v)| v)
}

/// Train two epochs of the wallclock-shaped pipeline with `budget_rows`
/// DSM-resident rows (`None` = tier off) and measure the second one.
fn run(dataset: &Arc<SyntheticDataset>, budget_rows: Option<usize>, frac: f64) -> Point {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage)
        .with_seed(3)
        .with_cache(0, CacheMode::Static)
        .with_storage(budget_rows.unwrap_or(0));
    let mut pipe = Pipeline::new(machine, Arc::clone(dataset), cfg).expect("pipeline");
    pipe.train_epoch(0); // warm-up epoch: fills scratch pools
    let before = wg_trace::metrics::snapshot();
    let r = pipe.train_epoch(1);
    let after = wg_trace::metrics::snapshot();
    let delta = |name: &str| (counter(&after, name) - counter(&before, name)).round() as u64;
    Point {
        frac,
        budget_rows: budget_rows.unwrap_or(0),
        rows: delta("mem.gather.rows"),
        algo_bytes: delta("mem.gather.algo_bytes"),
        bus_bytes: delta("mem.gather.bus_bytes"),
        storage_rows: delta("mem.storage.rows"),
        storage_bytes: delta("mem.storage.bytes"),
        blocking: r.storage_time,
        exposed: r.storage_exposed_time,
        epoch_time: r.epoch_time,
        gather_time: r.gather_time,
        loss_bits: r.loss.to_bits(),
        accuracy_bits: r.train_accuracy.to_bits(),
    }
}

fn point_json(p: &Point, row_bytes: u64) -> String {
    format!(
        "    {{\"frac\": {:.4}, \"budget_rows\": {}, \"rows\": {}, \
         \"algo_bytes\": {}, \"bus_bytes\": {}, \"storage_rows\": {}, \
         \"storage_bytes\": {}, \"dsm_bytes\": {}, \
         \"storage_blocking_s\": {:.9}, \"storage_exposed_s\": {:.9}, \
         \"epoch_time_s\": {:.9}, \"gather_time_s\": {:.9}, \
         \"loss_bits\": \"{:08x}\", \"accuracy_bits\": \"{:016x}\"}}",
        p.frac,
        p.budget_rows,
        p.rows,
        p.algo_bytes,
        p.bus_bytes,
        p.storage_rows,
        p.storage_bytes,
        (p.rows - p.storage_rows) * row_bytes,
        p.blocking.as_secs(),
        p.exposed.as_secs(),
        p.epoch_time.as_secs(),
        p.gather_time.as_secs(),
        p.loss_bits,
        p.accuracy_bits,
    )
}

fn main() {
    banner(
        "storage sweep",
        "DSM residency fraction vs disk traffic and epoch time",
    );
    wg_trace::enable_metrics();
    // Same heavy-tailed stand-in the cache sweep uses: residency is
    // hotness-ranked, so the tail is what actually falls to disk.
    let dataset = Arc::new(SyntheticDataset::generate_with_profile(
        DatasetKind::OgbnProducts,
        300,
        8,
        DegreeProfile::PowerLaw { alpha: 1.05 },
    ));
    let total_rows = dataset.num_nodes();
    let row_bytes = (dataset.feature_dim * std::mem::size_of::<f32>()) as u64;
    println!(
        "dataset: ogbn-products stand-in at 1/300 (power-law degrees, alpha 1.05) — \
         {total_rows} nodes x {row_bytes} B rows; tiny GraphSage, 4 GPUs\n",
    );

    let baseline = run(&dataset, None, -1.0);
    let points: Vec<Point> = FRACTIONS
        .iter()
        .map(|&frac| {
            let rows = ((total_rows as f64 * frac).round() as usize).max(1);
            run(&dataset, Some(rows), frac)
        })
        .collect();

    let mut t = Table::new(&[
        "resident",
        "budget rows",
        "disk rows",
        "disk MB",
        "blocking",
        "exposed",
        "gather",
        "epoch",
    ]);
    let row = |t: &mut Table, p: &Point| {
        t.row(&[
            if p.frac < 0.0 {
                "off".to_string()
            } else {
                format!("{:.0}%", p.frac * 100.0)
            },
            p.budget_rows.to_string(),
            p.storage_rows.to_string(),
            format!("{:.2}", p.storage_bytes as f64 / 1e6),
            format!("{}", p.blocking),
            format!("{}", p.exposed),
            format!("{}", p.gather_time),
            format!("{}", p.epoch_time),
        ]);
    };
    row(&mut t, &baseline);
    for p in &points {
        row(&mut t, p);
    }
    t.print();

    for p in &points {
        // Values never move: the staged rows really came back from disk
        // bit-identical.
        assert_eq!(
            p.loss_bits,
            baseline.loss_bits,
            "{:.0}% resident: loss diverged from tier-off baseline",
            p.frac * 100.0
        );
        assert_eq!(
            p.accuracy_bits,
            baseline.accuracy_bits,
            "{:.0}% resident: accuracy diverged from tier-off baseline",
            p.frac * 100.0
        );
        // Same gather work at every point...
        assert_eq!(p.rows, baseline.rows, "gathered row count moved");
        assert_eq!(p.algo_bytes, baseline.algo_bytes, "algorithmic bytes moved");
        // ...split exactly between the DSM and the disk tier.
        assert_eq!(
            p.storage_bytes + (p.rows - p.storage_rows) * row_bytes,
            baseline.algo_bytes,
            "{:.0}% resident: dsm + disk bytes != uncached total",
            p.frac * 100.0
        );
        assert_eq!(p.storage_bytes, p.storage_rows * row_bytes);
        // The prefetch overlap must genuinely hide NVMe time behind
        // compute whenever the tier serves rows.
        if p.storage_rows > 0 {
            assert!(
                p.exposed < p.blocking,
                "{:.0}% resident: prefetch-overlapped storage time {} not below blocking {}",
                p.frac * 100.0,
                p.exposed,
                p.blocking
            );
        } else {
            assert!(p.blocking.is_zero() && p.exposed.is_zero());
        }
    }
    // Lower residency → monotonically nondecreasing disk traffic, and a
    // fully-resident tier serves nothing from disk.
    assert_eq!(points[0].storage_rows, 0, "100% resident still hit disk");
    for w in points.windows(2) {
        assert!(
            w[1].storage_rows >= w[0].storage_rows,
            "disk rows not monotone in residency"
        );
    }
    println!(
        "\nall points bit-identical to tier-off baseline; dsm + disk bytes == uncached total; \
         prefetch overlap strictly hides NVMe time"
    );

    let points_json: Vec<String> = points.iter().map(|p| point_json(p, row_bytes)).collect();
    let json = format!(
        "{{\n  \"schema\": \"wg-storage-sweep-v1\",\n  \"dataset\": \"ogbn-products\",\n  \
         \"scale\": 300,\n  \"seed\": 3,\n  \"total_rows\": {total_rows},\n  \
         \"row_bytes\": {row_bytes},\n  \"baseline\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        point_json(&baseline, row_bytes),
        points_json.join(",\n")
    );
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    println!("Wrote BENCH_storage.json");
}
