//! Figure 8 — random-read bandwidth of the multi-GPU distributed shared
//! memory library vs the contiguous segment size.
//!
//! Each GPU gathers 4 GB (logical) of randomly placed segments out of a
//! 128 GB distributed allocation, sweeping the segment size 4 B → 4 KB.
//! Prints AlgoBW (seen by the algorithm) and BusBW (seen by NVLink),
//! with the paper's anchor points.

use wg_bench::{banner, Table};
use wg_mem::probe::bandwidth_sweep;
use wg_sim::{CostModel, DeviceSpec};

fn main() {
    banner("Figure 8", "random gather bandwidth vs segment size");
    let model = CostModel::dgx_a100();
    let spec = DeviceSpec::a100_40gb();
    let points = bandwidth_sweep(&model, &spec);

    let mut t = Table::new(&[
        "segment (B)",
        "BusBW (GB/s)",
        "AlgoBW (GB/s)",
        "paper anchor",
    ]);
    for p in &points {
        let anchor = match p.segment_bytes {
            64 => "BusBW ~181",
            128 => "BusBW ~230 (saturated)",
            512 => "AlgoBW ~260",
            _ => "",
        };
        t.row(&[
            p.segment_bytes.to_string(),
            format!("{:.1}", p.bus_gbps),
            format!("{:.1}", p.algo_gbps),
            anchor.to_string(),
        ]);
    }
    t.print();
    println!("\nBelow 64 B bandwidth is proportional to segment size; GNN");
    println!("feature rows (hundreds to thousands of bytes) saturate NVLink.");
    println!("Max AlgoBW = 300/(7/8) = 343 GB/s; max BusBW = 300 GB/s.");
}
