//! Figure 7 — validation accuracy of DGL and WholeGraph, epoch by epoch,
//! for GraphSage on the ogbn-products stand-in.

use wg_bench::{banner, hard_accuracy_dataset, Table};
use wg_graph::DatasetKind;
use wholegraph::prelude::*;

fn main() {
    banner(
        "Figure 7",
        "validation accuracy per epoch: DGL vs WholeGraph",
    );
    let epochs: u64 = std::env::var("WG_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let dataset = hard_accuracy_dataset(DatasetKind::OgbnProducts, 600, 19);

    let mut curves = Vec::new();
    for fw in [Framework::Dgl, Framework::WholeGraph] {
        let machine = Machine::dgx_a100();
        let cfg = PipelineConfig {
            hidden: 96,
            num_layers: 2,
            fanouts: vec![15, 15],
            batch_size: 256,
            dropout: 0.2,
            lr: 5e-3,
            ..PipelineConfig::tiny(fw, ModelKind::GraphSage)
        }
        .with_seed(19);
        let mut pipe = Pipeline::new(machine, dataset.clone(), cfg).unwrap();
        let out = Trainer::new(TrainerConfig {
            epochs,
            eval_every: 1,
            patience: None,
        })
        .run(&mut pipe);
        curves.push((fw, out.val_curve));
    }

    let mut t = Table::new(&["epoch", "DGL val-acc", "WholeGraph val-acc", "delta"]);
    for i in 0..curves[0].1.len() {
        let (e, dgl) = curves[0].1[i];
        let (_, wg) = curves[1].1[i];
        t.row(&[
            e.to_string(),
            format!("{:.2}%", dgl * 100.0),
            format!("{:.2}%", wg * 100.0),
            format!("{:+.2}pp", (wg - dgl) * 100.0),
        ]);
    }
    t.print();
    println!("\nPaper shape: the two curves coincide epoch by epoch — both");
    println!("frameworks train the same model on the same sampled sub-graphs.");
}
