//! A minimal JSON reader — just enough for `check_bench` (and tier1.sh
//! through it) to interrogate `BENCH_wallclock.json` without the fragile
//! grep/cut chains the shell used to do, and without pulling a JSON
//! dependency into the workspace.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Objects keep insertion order.
//! Errors carry the byte offset where parsing stopped.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`, like browsers do).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: message + byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(members));
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self.b.get(self.i).ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates are replaced, not paired — the
                            // bench files never emit astral characters.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&c) => {
                    // Copy a full UTF-8 sequence through untouched.
                    let s = &self.b[self.i..];
                    let len = std::str::from_utf8(s)
                        .map(|t| t.chars().next().map_or(1, char::len_utf8))
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(std::str::from_utf8(&s[..len]).unwrap());
                    self.i += len;
                    let _ = c;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shape() {
        let doc = r#"{
  "threads": 1, "bit_identical": true,
  "benches": [
    {"name": "sample", "tn_ms": 185.9485, "allocs_per_batch": 0,
     "checksum": "f0d397b0ce92dc84"},
    {"name": "epoch", "tn_ms": 40.8562,
     "stages": {"sample_ms": 4.1263}}
  ]
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("threads").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("bit_identical").and_then(Json::as_bool), Some(true));
        let benches = v.get("benches").and_then(Json::as_array).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(
            benches[0].get("checksum").and_then(Json::as_str),
            Some("f0d397b0ce92dc84")
        );
        let stage = benches[1].get("stages").and_then(|s| s.get("sample_ms"));
        assert_eq!(stage.and_then(Json::as_f64), Some(4.1263));
    }

    #[test]
    fn escapes_and_numbers() {
        let v = Json::parse(r#"["a\"b\\c\nA", -1.5e3, 0.25, null, false]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b\\c\nA"));
        assert_eq!(items[1].as_f64(), Some(-1500.0));
        assert_eq!(items[2].as_f64(), Some(0.25));
        assert_eq!(items[3], Json::Null);
        assert_eq!(items[4].as_bool(), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        let err = Json::parse("[tru]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn non_container_lookups_are_none() {
        let v = Json::parse("3").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_array().is_none());
        assert!(v.as_str().is_none());
    }
}
