//! Ablation: one-kernel DSM gather vs the 5-step NCCL-style gather
//! (host wall-clock of the real data movement; the simulated-time
//! comparison is Figure 10's harness).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_mem::gather::global_gather;
use wg_mem::nccl::nccl_gather;
use wg_mem::WholeMemory;
use wg_sim::cost::AccessMode;
use wg_sim::{CostModel, DeviceSpec};

fn bench_gather(c: &mut Criterion) {
    let model = CostModel::dgx_a100();
    let spec = DeviceSpec::a100_40gb();
    let rows = 100_000usize;
    let width = 128usize;
    let wm = WholeMemory::<f32>::allocate(&model, 8, rows, width, AccessMode::PeerAccess);
    wm.init_rows(|r, out| {
        for (j, v) in out.iter_mut().enumerate() {
            *v = (r + j) as f32;
        }
    });
    let mut rng = SmallRng::seed_from_u64(7);
    let indices: Vec<usize> = (0..40_000).map(|_| rng.gen_range(0..rows)).collect();
    let mut out = vec![0.0f32; indices.len() * width];

    let mut group = c.benchmark_group("feature_gather_40k_x_512B");
    group.sample_size(15);
    group.bench_with_input(BenchmarkId::new("dsm_one_kernel", ""), &(), |b, _| {
        b.iter(|| {
            let s = global_gather(&wm, black_box(&indices), &mut out, 0, &model, &spec);
            black_box(s.rows)
        });
    });
    group.bench_with_input(BenchmarkId::new("nccl_five_step", ""), &(), |b, _| {
        b.iter(|| {
            let s = nccl_gather(&wm, black_box(&indices), &mut out, 0, &model, &spec);
            black_box(s.bus_bytes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gather);
criterion_main!(benches);
