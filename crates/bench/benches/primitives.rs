//! Microbenchmarks of the GPU-kernel primitives Algorithm 1 and
//! AppendUnique are built from: the packed-key radix sort, the CAS hash
//! table, and the exclusive prefix scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_sample::hashtable::GpuHashTable;
use wg_sample::prefix::{exclusive_scan, parallel_exclusive_scan};
use wg_sample::radix::sort_with_indices;

fn bench_radix(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_sort_with_indices");
    group.sample_size(20);
    for n in [30usize, 256, 4096] {
        let mut rng = SmallRng::seed_from_u64(1);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
        group.bench_with_input(BenchmarkId::new("radix", n), &values, |b, v| {
            b.iter(|| black_box(sort_with_indices(black_box(v))).0.len());
        });
        group.bench_with_input(BenchmarkId::new("std_stable", n), &values, |b, v| {
            b.iter(|| {
                let mut pairs: Vec<(u32, u32)> =
                    v.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();
                pairs.sort();
                black_box(pairs.len())
            });
        });
    }
    group.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_hash_table");
    group.sample_size(20);
    for n in [16_384usize, 262_144] {
        let mut rng = SmallRng::seed_from_u64(2);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..n as u64 / 2)).collect();
        group.bench_with_input(BenchmarkId::new("insert_counted", n), &keys, |b, keys| {
            b.iter(|| {
                let t = GpuHashTable::with_capacity(keys.len());
                for &k in keys {
                    t.insert_counted(k);
                }
                black_box(t.num_slots())
            });
        });
        group.bench_with_input(BenchmarkId::new("std_hashmap", n), &keys, |b, keys| {
            b.iter(|| {
                let mut m = std::collections::HashMap::with_capacity(keys.len());
                for &k in keys {
                    *m.entry(k).or_insert(0u32) += 1;
                }
                black_box(m.len())
            });
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusive_scan");
    group.sample_size(20);
    let n = 1 << 20;
    let values: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
    group.bench_function("sequential_1M", |b| {
        b.iter(|| {
            let mut v = values.clone();
            black_box(exclusive_scan(&mut v))
        });
    });
    group.bench_function("parallel_1M", |b| {
        b.iter(|| {
            let mut v = values.clone();
            black_box(parallel_exclusive_scan(&mut v))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_radix, bench_hashtable, bench_scan);
criterion_main!(benches);
