//! Ablation: hash-table AppendUnique (§III-C2) vs the sort-based unique
//! "used in other frameworks".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_sample::{append_unique, append_unique_sorted};

fn workload(targets: usize, neighbors: usize, universe: u64, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t: Vec<u64> = (0..universe).collect();
    t.shuffle(&mut rng);
    t.truncate(targets);
    let n: Vec<u64> = (0..neighbors).map(|_| rng.gen_range(0..universe)).collect();
    (t, n)
}

fn bench_append_unique(c: &mut Criterion) {
    let mut group = c.benchmark_group("append_unique");
    group.sample_size(15);
    // Batch-512 × fanout-30 shaped inputs at two duplication levels.
    for (targets, neighbors, universe) in [
        (512usize, 15_360usize, 100_000u64),
        (512, 15_360, 4_000),
        (8_192, 245_760, 500_000),
    ] {
        let (t, n) = workload(targets, neighbors, universe, 3);
        let label = format!("{targets}t_{neighbors}n_u{universe}");
        group.bench_with_input(BenchmarkId::new("hash_table", &label), &(), |b, _| {
            b.iter(|| black_box(append_unique(black_box(&t), black_box(&n))).num_unique());
        });
        group.bench_with_input(BenchmarkId::new("sort_based", &label), &(), |b, _| {
            b.iter(|| black_box(append_unique_sorted(black_box(&t), black_box(&n))).num_unique());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_append_unique);
criterion_main!(benches);
