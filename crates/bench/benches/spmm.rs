//! g-SpMM kernels, including the §III-C4 ablation: backward scatter with
//! atomic adds for every node vs the duplicate-count==1 plain-store
//! optimization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::sparse::{spmm, spmm_backward_src, Agg, BlockCsr};
use wg_tensor::Matrix;

/// A batch-shaped block: `dst` targets, fanout sampled columns each.
fn block(dst: usize, src: usize, fanout: usize, dup_one: bool, seed: u64) -> BlockCsr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut offsets = vec![0u32];
    let mut indices = Vec::with_capacity(dst * fanout);
    for _ in 0..dst {
        for _ in 0..fanout {
            indices.push(rng.gen_range(0..src as u32));
        }
        offsets.push(indices.len() as u32);
    }
    let mut dup = vec![0u32; src];
    for &c in &indices {
        dup[c as usize] += 1;
    }
    if dup_one {
        // Pretend every node was sampled once: forces the plain-store
        // fast path everywhere (the measured upper bound of the
        // optimization; correctness then relies on actual uniqueness, so
        // this variant is benchmark-only).
        dup.iter_mut().for_each(|d| *d = 1);
    }
    BlockCsr {
        num_dst: dst,
        num_src: src,
        offsets,
        indices,
        dup_count: dup,
    }
}

fn bench_spmm(c: &mut Criterion) {
    let (dst, src, fanout, feat) = (2048usize, 30_000usize, 30usize, 128usize);
    let b_atomic = block(dst, src, fanout, false, 1);
    let b_assign = block(dst, src, fanout, true, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let x = Matrix::from_fn(src, feat, |_, _| rng.gen_range(-1.0..1.0));
    let g = Matrix::from_fn(dst, feat, |_, _| rng.gen_range(-1.0..1.0));

    let mut group = c.benchmark_group("g_spmm");
    group.sample_size(15);
    group.bench_with_input(BenchmarkId::new("forward_mean", ""), &(), |bch, _| {
        bch.iter(|| black_box(spmm(&b_atomic, black_box(&x), None, 1, Agg::Mean)).rows());
    });
    group.bench_with_input(
        BenchmarkId::new("backward_atomic_all", ""),
        &(),
        |bch, _| {
            bch.iter(|| {
                black_box(spmm_backward_src(
                    &b_atomic,
                    black_box(&g),
                    None,
                    1,
                    Agg::Mean,
                ))
                .rows()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("backward_dupcount_assign", ""),
        &(),
        |bch, _| {
            bch.iter(|| {
                black_box(spmm_backward_src(
                    &b_assign,
                    black_box(&g),
                    None,
                    1,
                    Agg::Mean,
                ))
                .rows()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
