//! Ablation: Algorithm 1 (path-doubling sampling without replacement) vs
//! the rejection-sampling and reservoir-style baselines (§III-C1), plus
//! the mini-batch hot path: the old-API shape (per-node neighbor copies,
//! Vec-of-Vecs, serial flatten) vs the zero-copy scratch-arena path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wg_graph::gen;
use wg_sample::wrs::{rejection_sample, sample_without_replacement, PathDoublingSampler};
use wg_sample::{
    sample_minibatch_into, sample_minibatch_reference, GraphAccess, HostGraphAccess, MiniBatch,
    SampleScratch, SamplerConfig,
};

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_without_replacement");
    group.sample_size(20);
    // The paper's shape: fanout 30 out of various neighbor counts, plus a
    // stress shape where m approaches n (rejection's worst case).
    for (m, n) in [(30usize, 100usize), (30, 10_000), (256, 512), (900, 1000)] {
        group.bench_with_input(
            BenchmarkId::new("path_doubling", format!("{m}of{n}")),
            &(m, n),
            |b, &(m, n)| {
                let mut rng = SmallRng::seed_from_u64(1);
                let mut sampler = PathDoublingSampler::new();
                let mut out = Vec::with_capacity(m);
                b.iter(|| {
                    out.clear();
                    sampler.sample(black_box(m), black_box(n), &mut rng, &mut out);
                    black_box(out.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rejection", format!("{m}of{n}")),
            &(m, n),
            |b, &(m, n)| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| black_box(rejection_sample(black_box(m), black_box(n), &mut rng)).len());
            },
        );
    }
    group.finish();

    // One-shot helper overhead.
    c.bench_function("sample_30_of_1000_oneshot", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(sample_without_replacement(30, 1000, &mut rng)).len());
    });
}

fn bench_minibatch(c: &mut Criterion) {
    let graph = gen::erdos_renyi(10_000, 15.0, 9);
    let features = vec![0.0f32; graph.num_nodes()];
    let machine = wg_sim::Machine::dgx_a100();
    let host = wg_graph::HostGraph::build(graph, features, 1, &machine.memory()).unwrap();
    let access = HostGraphAccess(&host);
    let handles: Vec<u64> = (0..1024u64).map(|v| access.handle_of(v)).collect();
    let cfg = SamplerConfig {
        fanouts: vec![15, 10, 5],
        seed: 7,
    };
    let mut group = c.benchmark_group("sample_minibatch");
    group.sample_size(10);
    group.bench_function("old_api_copy", |b| {
        b.iter(|| {
            let (mb, _) = sample_minibatch_reference(&access, black_box(&handles), &cfg, 0, 0);
            black_box(mb.blocks.len())
        })
    });
    group.bench_function("zero_copy_scratch", |b| {
        let mut scratch = SampleScratch::default();
        let mut mb = MiniBatch::empty();
        b.iter(|| {
            sample_minibatch_into(
                &access,
                black_box(&handles),
                &cfg,
                0,
                0,
                &mut scratch,
                &mut mb,
            );
            black_box(mb.blocks.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_minibatch);
criterion_main!(benches);
