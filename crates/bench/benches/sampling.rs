//! Ablation: Algorithm 1 (path-doubling sampling without replacement) vs
//! the rejection-sampling and reservoir-style baselines (§III-C1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wg_sample::wrs::{rejection_sample, sample_without_replacement, PathDoublingSampler};

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_without_replacement");
    group.sample_size(20);
    // The paper's shape: fanout 30 out of various neighbor counts, plus a
    // stress shape where m approaches n (rejection's worst case).
    for (m, n) in [(30usize, 100usize), (30, 10_000), (256, 512), (900, 1000)] {
        group.bench_with_input(
            BenchmarkId::new("path_doubling", format!("{m}of{n}")),
            &(m, n),
            |b, &(m, n)| {
                let mut rng = SmallRng::seed_from_u64(1);
                let mut sampler = PathDoublingSampler::new();
                let mut out = Vec::with_capacity(m);
                b.iter(|| {
                    out.clear();
                    sampler.sample(black_box(m), black_box(n), &mut rng, &mut out);
                    black_box(out.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rejection", format!("{m}of{n}")),
            &(m, n),
            |b, &(m, n)| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| black_box(rejection_sample(black_box(m), black_box(n), &mut rng)).len());
            },
        );
    }
    group.finish();

    // One-shot helper overhead.
    c.bench_function("sample_30_of_1000_oneshot", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(sample_without_replacement(30, 1000, &mut rng)).len());
    });
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
