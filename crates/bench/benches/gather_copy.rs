//! The two byte-stream hot loops behind the gather path: the per-row
//! feature copy (`simd::copy_slice`, the inner loop of
//! `global_gather_planned`) at forced-scalar vs AVX2 level, and the
//! FNV-1a checksum fold (`simd::fnv1a_f32`) that pins every bench's
//! bit-identity — serial by construction, so its speedup comes from
//! unrolling alone.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::simd::{self, Level};

/// A gather-shaped workload: `rows` feature rows of `width` floats
/// scattered through a larger pool, copied row-by-row into a dense
/// output — the exact access pattern of `global_gather_planned`.
fn row_copy(level: Level, pool: &[f32], picks: &[usize], width: usize, out: &mut [f32]) -> usize {
    for (i, &start) in picks.iter().enumerate() {
        let dst = &mut out[i * width..(i + 1) * width];
        simd::copy_slice(level, dst, &pool[start..start + width]);
    }
    out.len()
}

fn bench_row_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_row_copy");
    group.sample_size(20);
    // 100 (unaligned) and 256 (aligned) floats bracket typical feature
    // widths; 4096 rows is a realistic fanned-out minibatch.
    for width in [100usize, 256] {
        let rows = 4096usize;
        let pool_rows = 65_536usize;
        let mut rng = SmallRng::seed_from_u64(11);
        let pool: Vec<f32> = (0..pool_rows * width)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let picks: Vec<usize> = (0..rows)
            .map(|_| rng.gen_range(0..pool_rows) * width)
            .collect();
        let mut out = vec![0.0f32; rows * width];
        group.bench_with_input(BenchmarkId::new("scalar", width), &(), |b, _| {
            b.iter(|| {
                black_box(row_copy(
                    Level::Scalar,
                    black_box(&pool),
                    black_box(&picks),
                    width,
                    &mut out,
                ))
            });
        });
        if simd::avx2_available() {
            group.bench_with_input(BenchmarkId::new("simd-avx2", width), &(), |b, _| {
                b.iter(|| {
                    black_box(row_copy(
                        Level::Avx2,
                        black_box(&pool),
                        black_box(&picks),
                        width,
                        &mut out,
                    ))
                });
            });
        }
    }
    group.finish();
}

fn bench_fnv(c: &mut Criterion) {
    let mut group = c.benchmark_group("fnv1a_f32");
    group.sample_size(20);
    let n = 1 << 20;
    let mut rng = SmallRng::seed_from_u64(12);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    group.bench_function("unrolled_1M", |b| {
        b.iter(|| black_box(simd::fnv1a_f32(simd::FNV_OFFSET, black_box(&data))));
    });
    group.bench_function("naive_1M", |b| {
        b.iter(|| {
            let h = black_box(&data).iter().fold(simd::FNV_OFFSET, |h, v| {
                (h ^ v.to_bits() as u64).wrapping_mul(simd::FNV_PRIME)
            });
            black_box(h)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_row_copy, bench_fnv);
criterion_main!(benches);
