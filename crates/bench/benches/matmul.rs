//! Dense matmul: the SIMD-dispatched blocked kernel vs the forced-scalar
//! blocked kernel vs the naive reference, all bit-identical to each
//! other. Two shapes bracket the training path: a tall-skinny batch ×
//! hidden product (the per-layer forward shape) and a squarer hidden ×
//! hidden product (the backward weight-gradient shape). The `simd-avx2`
//! rows only appear on hosts with AVX2; `blocked` is whatever the
//! runtime dispatcher picked (`WG_SIMD` overrides it).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::SmallRng;
use wg_tensor::ops::{matmul_into, matmul_into_with, matmul_reference};
use wg_tensor::simd::{self, Level};
use wg_tensor::Matrix;

fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
    let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
    (a, b)
}

fn bench_matmul(c: &mut Criterion) {
    let shapes = [
        ("batch2048x128x256", 2048usize, 128usize, 256usize),
        ("hidden512x512x512", 512, 512, 512),
    ];
    let mut group = c.benchmark_group("matmul");
    group.sample_size(15);
    for (label, m, k, n) in shapes {
        let (a, b) = mats(m, k, n, 7);
        let mut out = Matrix::empty();
        group.bench_with_input(BenchmarkId::new("blocked", label), &(), |bch, _| {
            bch.iter(|| {
                matmul_into(black_box(&a), black_box(&b), &mut out);
                black_box(out.rows())
            });
        });
        group.bench_with_input(BenchmarkId::new("scalar", label), &(), |bch, _| {
            bch.iter(|| {
                matmul_into_with(Level::Scalar, black_box(&a), black_box(&b), &mut out);
                black_box(out.rows())
            });
        });
        if simd::avx2_available() {
            group.bench_with_input(BenchmarkId::new("simd-avx2", label), &(), |bch, _| {
                bch.iter(|| {
                    matmul_into_with(Level::Avx2, black_box(&a), black_box(&b), &mut out);
                    black_box(out.rows())
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("reference", label), &(), |bch, _| {
            bch.iter(|| black_box(matmul_reference(black_box(&a), black_box(&b))).rows());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
