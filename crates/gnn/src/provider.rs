//! Layer providers (§III-A, §IV-C5, Figure 11).
//!
//! WholeGraph lets users build models either from its own optimized GNN
//! layer ops or from third-party layers (DGL's or PyG's) plugged on top of
//! WholeGraph's sampling and gathering. The math is identical; what
//! differs is execution efficiency: third-party layers issue more separate
//! kernels (un-fused message/aggregate/update steps, Python-side glue) and
//! reach lower kernel efficiency. The paper measures WholeGraph-native
//! layers giving "up to 1.31×" the end-to-end epoch speed of WG+DGL layers
//! and "up to 2.43×" of WG+PyG layers.

/// Which implementation executes the GNN layers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LayerProvider {
    /// WholeGraph's fused native layer ops.
    WholeGraphNative,
    /// DGL layer implementations on top of WholeGraph sampling/gather.
    DglLayers,
    /// PyG layer implementations on top of WholeGraph sampling/gather.
    PygLayers,
}

impl LayerProvider {
    /// Display name as used in Figure 11's legend.
    pub fn name(self) -> &'static str {
        match self {
            LayerProvider::WholeGraphNative => "WholeGraph",
            LayerProvider::DglLayers => "WholeGraph+DGL",
            LayerProvider::PygLayers => "WholeGraph+PyG",
        }
    }

    /// Multiplier on the native layer-compute time.
    ///
    /// Calibrated so the *end-to-end epoch* ratios land at the paper's
    /// "up to 1.31× / up to 2.43×" (training is most of a WholeGraph epoch
    /// but not all of it, so the per-phase factors sit slightly above the
    /// end-to-end numbers).
    pub fn compute_factor(self) -> f64 {
        match self {
            LayerProvider::WholeGraphNative => 1.0,
            LayerProvider::DglLayers => 1.40,
            LayerProvider::PygLayers => 2.70,
        }
    }

    /// Multiplier on the number of kernel launches per layer (un-fused
    /// third-party implementations launch message, reduce, and update
    /// kernels separately, plus framework-glue elementwise ops).
    pub fn kernel_factor(self) -> u32 {
        match self {
            LayerProvider::WholeGraphNative => 1,
            LayerProvider::DglLayers => 3,
            LayerProvider::PygLayers => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_is_fastest() {
        assert!(
            LayerProvider::WholeGraphNative.compute_factor()
                < LayerProvider::DglLayers.compute_factor()
        );
        assert!(
            LayerProvider::DglLayers.compute_factor() < LayerProvider::PygLayers.compute_factor()
        );
        assert_eq!(LayerProvider::WholeGraphNative.compute_factor(), 1.0);
    }

    #[test]
    fn factors_bound_the_paper_ratios() {
        // End-to-end epoch ratios reported by the paper are ≤ the pure
        // layer-compute factors (sampling/gather dilute them).
        assert!(LayerProvider::DglLayers.compute_factor() >= 1.31);
        assert!(LayerProvider::PygLayers.compute_factor() >= 2.43);
    }

    #[test]
    fn names_match_figure11_legend() {
        assert_eq!(LayerProvider::WholeGraphNative.name(), "WholeGraph");
        assert_eq!(LayerProvider::DglLayers.name(), "WholeGraph+DGL");
        assert_eq!(LayerProvider::PygLayers.name(), "WholeGraph+PyG");
    }
}
