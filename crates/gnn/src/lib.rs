//! # wg-gnn — GNN layers and models
//!
//! The three models of the paper's evaluation — **GCN**, **GraphSage**
//! (mean aggregation) and **GAT** (4 heads) — built from the g-SpMM /
//! g-SDDMM / edge-softmax message-passing ops of §III-C4 on the
//! [`wg_autograd`] tape. All models follow the paper's evaluation shape:
//! 3 layers, hidden size 256, batch 512, fanout 30 per layer (configurable
//! in [`model::GnnConfig`]).
//!
//! [`provider`] models the paper's **layer providers** (§III-A / §IV-C5):
//! the same mathematical layers can be executed by WholeGraph's native
//! fused kernels or by DGL/PyG layer implementations, which spend more
//! kernel launches and achieve lower kernel efficiency — the source of the
//! "up to 1.31×/2.43× faster than WholeGraph using DGL/PyG layers" result
//! in Figure 11.

pub mod cost;
pub mod model;
pub mod provider;

pub use cost::train_step_time;
pub use model::{GnnConfig, GnnModel, ModelKind};
pub use provider::LayerProvider;
