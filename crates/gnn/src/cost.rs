//! Simulated compute cost of a training step.
//!
//! The layers really execute (on CPU threads); what the experiments report
//! is the *simulated GPU time* of the same work, computed from FLOP counts
//! of the actual sampled block shapes and the device's effective rates.

use wg_sim::cost::KernelClass;
use wg_sim::device::DeviceSpec;
use wg_sim::{CostModel, SimTime};

use crate::model::{GnnConfig, ModelKind};
use crate::provider::LayerProvider;

/// Shape summary of one sampled block (outermost first, as in a
/// mini-batch).
#[derive(Clone, Copy, Debug)]
pub struct BlockShape {
    /// Destination nodes.
    pub num_dst: usize,
    /// Source nodes.
    pub num_src: usize,
    /// Sampled edges.
    pub num_edges: usize,
}

/// Dense + sparse FLOPs of one *forward* pass over the given blocks.
///
/// Blocks are outermost-first (sampler order); layer `l` of the model
/// consumes block `L-1-l`.
pub fn forward_flops(cfg: &GnnConfig, blocks: &[BlockShape]) -> (f64, f64) {
    assert_eq!(blocks.len(), cfg.num_layers);
    let mut dense = 0.0f64;
    let mut sparse = 0.0f64;
    for l in 0..cfg.num_layers {
        let b = blocks[cfg.num_layers - 1 - l];
        let in_dim = if l == 0 { cfg.in_dim } else { cfg.hidden };
        let out_dim = if l == cfg.num_layers - 1 {
            cfg.num_classes
        } else {
            cfg.hidden
        };
        let (m, s, e) = (b.num_dst as f64, b.num_src as f64, b.num_edges as f64);
        match cfg.kind {
            ModelKind::Gcn => {
                sparse += 2.0 * e * in_dim as f64; // mean aggregate
                dense += 2.0 * m * in_dim as f64 * out_dim as f64; // linear
            }
            ModelKind::GraphSage => {
                sparse += 2.0 * e * in_dim as f64;
                dense += 2.0 * 2.0 * m * in_dim as f64 * out_dim as f64; // self + neigh
            }
            ModelKind::Gin => {
                sparse += 2.0 * e * in_dim as f64; // sum aggregate
                dense += 2.0 * m * in_dim as f64 * out_dim as f64; // MLP layer 1
                dense += 2.0 * m * out_dim as f64 * out_dim as f64; // MLP layer 2
            }
            ModelKind::Gat => {
                let heads = if l == cfg.num_layers - 1 {
                    1
                } else {
                    cfg.heads
                } as f64;
                dense += 2.0 * s * in_dim as f64 * out_dim as f64; // per-src transform
                dense += 2.0 * 2.0 * s * out_dim as f64 * heads; // attention projections
                sparse += 2.0 * e * out_dim as f64; // weighted aggregate
                sparse += 8.0 * e * heads; // scores, leakyrelu, softmax
            }
        }
    }
    (dense, sparse)
}

/// Kernel launches of one forward+backward step with the native provider.
fn native_kernels(cfg: &GnnConfig) -> u32 {
    // ~4 forward + ~8 backward kernels per layer, plus loss + optimizer.
    (12 * cfg.num_layers + 4) as u32
}

/// Simulated duration of one training step (forward + backward +
/// optimizer) on `spec`, under the given layer provider.
///
/// Backward ≈ 2× forward FLOPs (two GEMMs per forward GEMM), so a step is
/// ~3× forward.
pub fn train_step_time(
    cfg: &GnnConfig,
    blocks: &[BlockShape],
    provider: LayerProvider,
    model: &CostModel,
    spec: &DeviceSpec,
    param_scalars: usize,
) -> SimTime {
    let (dense_f, sparse_f) = forward_flops(cfg, blocks);
    let factor = provider.compute_factor();
    let kernels = native_kernels(cfg) * provider.kernel_factor();
    let dense = model.compute_time(3.0 * dense_f * factor, KernelClass::Dense, spec, kernels);
    let sparse = model.compute_time(3.0 * sparse_f * factor, KernelClass::Sparse, spec, 0);
    // Optimizer update: ~10 flops per scalar, memory-bound.
    let opt = model.compute_time(10.0 * param_scalars as f64, KernelClass::Sparse, spec, 1);
    dense + sparse + opt
}

/// Simulated duration of one *inference* (forward-only) pass.
pub fn eval_step_time(
    cfg: &GnnConfig,
    blocks: &[BlockShape],
    provider: LayerProvider,
    model: &CostModel,
    spec: &DeviceSpec,
) -> SimTime {
    let (dense_f, sparse_f) = forward_flops(cfg, blocks);
    let factor = provider.compute_factor();
    let kernels = (4 * cfg.num_layers as u32 + 2) * provider.kernel_factor();
    model.compute_time(dense_f * factor, KernelClass::Dense, spec, kernels)
        + model.compute_time(sparse_f * factor, KernelClass::Sparse, spec, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;

    fn paper_blocks() -> Vec<BlockShape> {
        // Representative 3-layer, batch-512, fanout-30 shapes.
        vec![
            BlockShape {
                num_dst: 512,
                num_src: 14_000,
                num_edges: 15_360,
            },
            BlockShape {
                num_dst: 14_000,
                num_src: 300_000,
                num_edges: 420_000,
            },
            BlockShape {
                num_dst: 300_000,
                num_src: 1_500_000,
                num_edges: 9_000_000,
            },
        ]
    }

    #[test]
    fn gat_costs_more_than_sage_than_gcn() {
        // §IV-C2: "GAT model has more parameters and computation amounts".
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let t = |kind| {
            let cfg = GnnConfig::paper(kind, 100, 47);
            train_step_time(
                &cfg,
                &paper_blocks(),
                LayerProvider::WholeGraphNative,
                &model,
                &spec,
                500_000,
            )
        };
        let gcn = t(ModelKind::Gcn);
        let sage = t(ModelKind::GraphSage);
        let gat = t(ModelKind::Gat);
        assert!(gat > sage && sage > gcn, "gat {gat} sage {sage} gcn {gcn}");
        // GAT should be a multiple of GCN, echoing Table V's 3–4× epoch gap
        // for WholeGraph.
        assert!(gat / gcn > 2.0, "GAT/GCN ratio {}", gat / gcn);
    }

    #[test]
    fn provider_factors_order_step_times() {
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let cfg = GnnConfig::paper(ModelKind::GraphSage, 100, 47);
        let t = |p| train_step_time(&cfg, &paper_blocks(), p, &model, &spec, 500_000);
        let native = t(LayerProvider::WholeGraphNative);
        let dgl = t(LayerProvider::DglLayers);
        let pyg = t(LayerProvider::PygLayers);
        assert!(native < dgl && dgl < pyg);
        // Ratios within the Figure 11 ballpark.
        assert!(dgl / native > 1.2 && dgl / native < 1.6, "{}", dgl / native);
        assert!(pyg / native > 2.0 && pyg / native < 3.2, "{}", pyg / native);
    }

    #[test]
    fn step_time_magnitude_is_milliseconds() {
        // A paper-scale GraphSage step on an A100 should take single-digit
        // milliseconds — consistent with WholeGraph's ~1 s, 48-batch
        // per-GPU epochs on ogbn-products.
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let cfg = GnnConfig::paper(ModelKind::GraphSage, 100, 47);
        let t = train_step_time(
            &cfg,
            &paper_blocks(),
            LayerProvider::WholeGraphNative,
            &model,
            &spec,
            500_000,
        );
        assert!(t.as_millis() > 1.0 && t.as_millis() < 50.0, "step time {t}");
    }

    #[test]
    fn eval_is_cheaper_than_train() {
        let model = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let cfg = GnnConfig::paper(ModelKind::Gcn, 100, 47);
        let tr = train_step_time(
            &cfg,
            &paper_blocks(),
            LayerProvider::WholeGraphNative,
            &model,
            &spec,
            100_000,
        );
        let ev = eval_step_time(
            &cfg,
            &paper_blocks(),
            LayerProvider::WholeGraphNative,
            &model,
            &spec,
        );
        assert!(ev < tr);
    }
}
