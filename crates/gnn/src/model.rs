//! GNN model definitions.
//!
//! All three models share the sampled-mini-batch forward structure: the
//! gathered input features cover the deepest frontier; each layer consumes
//! one [`BlockCsr`] (deepest block first) and produces features for the
//! next-smaller frontier, whose nodes are a *prefix* of the current one
//! (AppendUnique's targets-first layout — `Tape::top_rows` extracts the
//! destination slice without re-gathering).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use wg_autograd::{NodeId, ParamId, Params, Tape};
use wg_tensor::sparse::{Agg, BlockCsr};
use wg_tensor::Matrix;

/// Which GNN architecture (paper §IV "GNN Models", plus GIN as an
/// extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ModelKind {
    /// Graph convolution (with the sampling strategy the paper adds to it).
    Gcn,
    /// GraphSage with mean aggregation.
    GraphSage,
    /// Graph attention network (4 heads in the paper).
    Gat,
    /// Graph isomorphism network (sum aggregation + per-layer MLP) — not
    /// in the paper's evaluation; included as a library extension.
    Gin,
}

impl ModelKind {
    /// The paper's three models, in its table order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::GraphSage, ModelKind::Gat];

    /// The paper's models plus the GIN extension.
    pub const EXTENDED: [ModelKind; 4] = [
        ModelKind::Gcn,
        ModelKind::GraphSage,
        ModelKind::Gat,
        ModelKind::Gin,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::GraphSage => "GraphSage",
            ModelKind::Gat => "GAT",
            ModelKind::Gin => "GIN",
        }
    }
}

/// Model hyperparameters. Defaults follow the paper: 3 layers, hidden 256,
/// 4 GAT heads.
#[derive(Clone, Debug)]
pub struct GnnConfig {
    /// Architecture.
    pub kind: ModelKind,
    /// Input feature width.
    pub in_dim: usize,
    /// Hidden width per layer (256 in the paper).
    pub hidden: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Layer count (3 in the paper).
    pub num_layers: usize,
    /// Attention heads for GAT (4 in the paper). Hidden width must be
    /// divisible by this.
    pub heads: usize,
    /// Dropout rate applied to layer inputs during training.
    pub dropout: f32,
}

impl GnnConfig {
    /// The paper's evaluation configuration for a given model and dataset
    /// shape.
    pub fn paper(kind: ModelKind, in_dim: usize, num_classes: usize) -> Self {
        GnnConfig {
            kind,
            in_dim,
            hidden: 256,
            num_classes,
            num_layers: 3,
            heads: 4,
            dropout: 0.5,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(kind: ModelKind, in_dim: usize, num_classes: usize) -> Self {
        GnnConfig {
            kind,
            in_dim,
            hidden: 16,
            num_classes,
            num_layers: 2,
            heads: 2,
            dropout: 0.0,
        }
    }
}

enum LayerParams {
    Gcn {
        w: ParamId,
        b: ParamId,
    },
    Sage {
        w_self: ParamId,
        w_neigh: ParamId,
        b: ParamId,
    },
    Gat {
        w: ParamId,
        a_dst: ParamId,
        a_src: ParamId,
        b: ParamId,
    },
    Gin {
        w1: ParamId,
        b1: ParamId,
        w2: ParamId,
        b2: ParamId,
    },
}

/// A GNN model: parameter store + per-layer parameter handles.
pub struct GnnModel {
    /// Configuration.
    pub cfg: GnnConfig,
    /// Trainable parameters.
    pub params: Params,
    layers: Vec<LayerParams>,
}

impl GnnModel {
    /// Build and initialize a model.
    pub fn new(cfg: GnnConfig, seed: u64) -> Self {
        assert!(cfg.num_layers >= 1);
        if cfg.kind == ModelKind::Gat {
            assert_eq!(cfg.hidden % cfg.heads, 0, "heads must divide hidden");
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut params = Params::new();
        let mut layers = Vec::with_capacity(cfg.num_layers);
        for l in 0..cfg.num_layers {
            let in_dim = if l == 0 { cfg.in_dim } else { cfg.hidden };
            let out_dim = if l == cfg.num_layers - 1 {
                cfg.num_classes
            } else {
                cfg.hidden
            };
            let lp = match cfg.kind {
                ModelKind::Gcn => LayerParams::Gcn {
                    w: params.add_xavier(&format!("gcn{l}.w"), in_dim, out_dim, &mut rng),
                    b: params.add_bias(&format!("gcn{l}.b"), out_dim),
                },
                ModelKind::GraphSage => LayerParams::Sage {
                    w_self: params.add_xavier(
                        &format!("sage{l}.w_self"),
                        in_dim,
                        out_dim,
                        &mut rng,
                    ),
                    w_neigh: params.add_xavier(
                        &format!("sage{l}.w_neigh"),
                        in_dim,
                        out_dim,
                        &mut rng,
                    ),
                    b: params.add_bias(&format!("sage{l}.b"), out_dim),
                },
                ModelKind::Gin => LayerParams::Gin {
                    w1: params.add_xavier(&format!("gin{l}.w1"), in_dim, out_dim, &mut rng),
                    b1: params.add_bias(&format!("gin{l}.b1"), out_dim),
                    w2: params.add_xavier(&format!("gin{l}.w2"), out_dim, out_dim, &mut rng),
                    b2: params.add_bias(&format!("gin{l}.b2"), out_dim),
                },
                ModelKind::Gat => {
                    // Hidden layers use `heads` heads over out_dim channels;
                    // the final layer collapses to a single head.
                    let heads = if l == cfg.num_layers - 1 {
                        1
                    } else {
                        cfg.heads
                    };
                    // Attention vectors project the full layer width onto
                    // one score per head (a mild simplification of
                    // per-head-slice projection; heads still attend
                    // independently through their own score columns).
                    let _ = heads;
                    LayerParams::Gat {
                        w: params.add_xavier(&format!("gat{l}.w"), in_dim, out_dim, &mut rng),
                        a_dst: params.add_xavier(
                            &format!("gat{l}.a_dst"),
                            out_dim,
                            heads,
                            &mut rng,
                        ),
                        a_src: params.add_xavier(
                            &format!("gat{l}.a_src"),
                            out_dim,
                            heads,
                            &mut rng,
                        ),
                        b: params.add_bias(&format!("gat{l}.b"), out_dim),
                    }
                }
            };
            layers.push(lp);
        }
        GnnModel {
            cfg,
            params,
            layers,
        }
    }

    /// Heads used by layer `l`.
    pub fn layer_heads(&self, l: usize) -> usize {
        match self.cfg.kind {
            ModelKind::Gat if l < self.cfg.num_layers - 1 => self.cfg.heads,
            ModelKind::Gat => 1,
            _ => 1,
        }
    }

    /// Forward pass over a sampled mini-batch.
    ///
    /// `blocks` are ordered **outermost first** (as produced by the
    /// sampler: `blocks[0]`'s destinations are the training batch); the
    /// model consumes them in reverse. `input` holds the gathered features
    /// of the deepest frontier (`blocks.last().num_src` rows). Returns the
    /// tape and the logits node (`blocks[0].num_dst` rows).
    ///
    /// Every intermediate activation (and, in `backward`, every gradient)
    /// is drawn from the tape's [`wg_autograd::Workspace`] pool, so a
    /// caller that keeps one tape across batches — calling `Tape::reset`
    /// between them — runs steady-state forward/backward passes without
    /// heap allocation, bit-identically to fresh tapes (see the
    /// `persistent_workspace_training_is_bit_identical` test).
    pub fn forward(
        &self,
        tape: &mut Tape,
        blocks: &[Arc<BlockCsr>],
        input: Matrix,
        training: bool,
        dropout_seed: u64,
    ) -> NodeId {
        assert_eq!(blocks.len(), self.cfg.num_layers, "one block per layer");
        assert_eq!(
            input.rows(),
            blocks.last().unwrap().num_src,
            "input features must cover the deepest frontier"
        );
        let mut x = tape.input(input);
        for (l, layer) in self.layers.iter().enumerate() {
            let block = Arc::clone(&blocks[blocks.len() - 1 - l]);
            if training && self.cfg.dropout > 0.0 {
                x = tape.dropout(x, self.cfg.dropout, dropout_seed ^ ((l as u64) << 32));
            }
            x = self.layer_forward(tape, layer, l, block, x);
            if l + 1 < self.cfg.num_layers {
                x = match self.cfg.kind {
                    ModelKind::Gat => tape.elu(x, 1.0),
                    _ => tape.relu(x),
                };
            }
            // `x` becomes the src features of the next (smaller) block.
        }
        x
    }

    fn layer_forward(
        &self,
        tape: &mut Tape,
        layer: &LayerParams,
        l: usize,
        block: Arc<BlockCsr>,
        x: NodeId,
    ) -> NodeId {
        match layer {
            LayerParams::Gcn { w, b } => {
                // Sampled GCN: mean-aggregate neighbors, average with the
                // node's own embedding (self-loop of the normalized
                // adjacency), then linear.
                let agg = tape.spmm(Arc::clone(&block), x, None, 1, Agg::Mean);
                let own = tape.top_rows(x, block.num_dst);
                let sum = tape.add(agg, own);
                let half = tape.scale(sum, 0.5);
                let wi = tape.param(&self.params, *w);
                let bi = tape.param(&self.params, *b);
                let h = tape.matmul(half, wi);
                tape.bias(h, bi)
            }
            LayerParams::Sage { w_self, w_neigh, b } => {
                let agg = tape.spmm(Arc::clone(&block), x, None, 1, Agg::Mean);
                let own = tape.top_rows(x, block.num_dst);
                let wsi = tape.param(&self.params, *w_self);
                let wni = tape.param(&self.params, *w_neigh);
                let bi = tape.param(&self.params, *b);
                let hs = tape.matmul(own, wsi);
                let hn = tape.matmul(agg, wni);
                let h = tape.add(hs, hn);
                tape.bias(h, bi)
            }
            LayerParams::Gin { w1, b1, w2, b2 } => {
                // GIN: MLP((1 + ε)·x_dst + Σ_src), ε = 0.
                let agg = tape.spmm(Arc::clone(&block), x, None, 1, Agg::Sum);
                let own = tape.top_rows(x, block.num_dst);
                let sum = tape.add(agg, own);
                let w1i = tape.param(&self.params, *w1);
                let b1i = tape.param(&self.params, *b1);
                let h = tape.matmul(sum, w1i);
                let h = tape.bias(h, b1i);
                let h = tape.relu(h);
                let w2i = tape.param(&self.params, *w2);
                let b2i = tape.param(&self.params, *b2);
                let h = tape.matmul(h, w2i);
                tape.bias(h, b2i)
            }
            LayerParams::Gat { w, a_dst, a_src, b } => {
                let heads = self.layer_heads(l);
                let wi = tape.param(&self.params, *w);
                let h = tape.matmul(x, wi); // [num_src, out_dim]
                let adi = tape.param(&self.params, *a_dst);
                let asi = tape.param(&self.params, *a_src);
                let s_src = tape.matmul(h, asi); // [num_src, heads]
                let s_all = tape.matmul(h, adi); // [num_src, heads]
                let s_dst = tape.top_rows(s_all, block.num_dst);
                let logits = tape.edge_scores(Arc::clone(&block), s_dst, s_src);
                let logits = tape.leaky_relu(logits, 0.2);
                let att = tape.edge_softmax(Arc::clone(&block), logits);
                let h2 = tape.spmm(Arc::clone(&block), h, Some(att), heads, Agg::Sum);
                let bi = tape.param(&self.params, *b);
                tape.bias(h2, bi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_tensor::ops::softmax_cross_entropy;

    /// Two nested blocks for a 2-layer model:
    /// block deep: 3 dst → 5 src; block outer: 2 dst → 3 src.
    fn blocks() -> Vec<Arc<BlockCsr>> {
        let outer = BlockCsr {
            num_dst: 2,
            num_src: 3,
            offsets: vec![0, 2, 3],
            indices: vec![1, 2, 2],
            dup_count: vec![0, 1, 2],
        };
        let deep = BlockCsr {
            num_dst: 3,
            num_src: 5,
            offsets: vec![0, 2, 3, 5],
            indices: vec![3, 4, 2, 0, 4],
            dup_count: vec![1, 0, 1, 1, 2],
        };
        outer.validate();
        deep.validate();
        vec![Arc::new(outer), Arc::new(deep)]
    }

    fn input() -> Matrix {
        Matrix::from_fn(5, 6, |i, j| ((i * 7 + j) as f32).sin())
    }

    #[test]
    fn all_models_produce_batch_sized_logits() {
        for kind in ModelKind::EXTENDED {
            let cfg = GnnConfig::tiny(kind, 6, 4);
            let model = GnnModel::new(cfg, 42);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &blocks(), input(), false, 0);
            let v = tape.value(out);
            assert_eq!((v.rows(), v.cols()), (2, 4), "{kind:?}");
            assert!(
                v.data().iter().all(|x| x.is_finite()),
                "{kind:?} produced non-finite logits"
            );
        }
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let cfg = GnnConfig::tiny(ModelKind::GraphSage, 6, 4);
        let model = GnnModel::new(cfg, 7);
        let run = || {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &blocks(), input(), false, 0);
            tape.value(out).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn one_sgd_step_reduces_loss_for_every_model() {
        use wg_autograd::{Optimizer, Sgd};
        for kind in ModelKind::EXTENDED {
            let cfg = GnnConfig::tiny(kind, 6, 4);
            let mut model = GnnModel::new(cfg, 3);
            let labels = [1u32, 3];
            let loss_of = |model: &GnnModel| {
                let mut tape = Tape::new();
                let out = model.forward(&mut tape, &blocks(), input(), false, 0);
                softmax_cross_entropy(tape.value(out), &labels).0
            };
            let loss0 = loss_of(&model);
            let mut opt = Sgd::new(0.1, 0.0);
            for _ in 0..5 {
                let mut tape = Tape::new();
                let out = model.forward(&mut tape, &blocks(), input(), false, 0);
                let (_, grad) = softmax_cross_entropy(tape.value(out), &labels);
                model.params.zero_grads();
                tape.backward(out, grad, &mut model.params);
                opt.step(&mut model.params);
            }
            let loss1 = loss_of(&model);
            assert!(loss1 < loss0, "{kind:?}: loss {loss0} -> {loss1}");
        }
    }

    #[test]
    fn persistent_workspace_training_is_bit_identical() {
        // The tentpole guarantee of the allocation-free training path:
        // recycling every activation/gradient buffer through one shared
        // workspace across steps changes nothing — weights and losses are
        // bit-for-bit those of fresh per-step tapes, for every model
        // (dropout on, so the pooled mask path is exercised too).
        use wg_autograd::{Adam, Optimizer};
        use wg_tensor::ops::softmax_cross_entropy_into;
        for kind in ModelKind::EXTENDED {
            let labels = [1u32, 3];
            let train = |persistent: bool| -> Vec<u32> {
                let mut cfg = GnnConfig::tiny(kind, 6, 4);
                cfg.dropout = 0.3;
                let mut model = GnnModel::new(cfg, 9);
                let mut opt = Adam::new(0.05);
                let mut tape = Tape::new();
                let mut bits = Vec::new();
                for step in 0..4u64 {
                    if persistent {
                        tape.reset();
                    } else {
                        tape = Tape::new();
                    }
                    let out = model.forward(&mut tape, &blocks(), input(), true, step);
                    let mut grad = tape.alloc(0, 0);
                    let mut losses = Vec::new();
                    let loss = softmax_cross_entropy_into(
                        tape.value(out),
                        &labels,
                        &mut grad,
                        &mut losses,
                    );
                    bits.push(loss.to_bits());
                    model.params.zero_grads();
                    tape.backward(out, grad, &mut model.params);
                    opt.step(&mut model.params);
                }
                for id in model.params.ids().collect::<Vec<_>>() {
                    bits.extend(model.params.value(id).data().iter().map(|x| x.to_bits()));
                }
                bits
            };
            assert_eq!(train(true), train(false), "{kind:?}");
        }
    }

    #[test]
    fn gat_and_sage_have_more_parameters_than_gcn() {
        // The paper attributes GAT's smaller speedup to its larger
        // parameter/compute footprint; the *compute* ordering is asserted
        // in `cost::tests`. Parameter-wise, GAT and GraphSage both exceed
        // plain GCN (attention vectors / the second weight matrix).
        let n = |kind| {
            GnnModel::new(GnnConfig::paper(kind, 100, 16), 0)
                .params
                .num_scalars()
        };
        assert!(n(ModelKind::Gat) > n(ModelKind::Gcn));
        assert!(n(ModelKind::GraphSage) > n(ModelKind::Gcn));
    }

    #[test]
    fn paper_config_matches_evaluation_setup() {
        let cfg = GnnConfig::paper(ModelKind::GraphSage, 128, 172);
        assert_eq!(cfg.hidden, 256);
        assert_eq!(cfg.num_layers, 3);
        assert_eq!(cfg.heads, 4);
    }

    #[test]
    #[should_panic(expected = "one block per layer")]
    fn wrong_block_count_panics() {
        let cfg = GnnConfig::tiny(ModelKind::Gcn, 6, 4);
        let model = GnnModel::new(cfg, 0);
        let mut tape = Tape::new();
        let b = blocks();
        model.forward(&mut tape, &b[..1], input(), false, 0);
    }
}
