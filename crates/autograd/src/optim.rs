//! Optimizers.

use wg_tensor::Matrix;

use crate::params::{ParamId, Params};

/// A gradient-based parameter updater.
pub trait Optimizer {
    /// Apply one update step from the gradients currently stored in
    /// `params` (does not zero them).
    fn step(&mut self, params: &mut Params);

    /// Zero any optimizer state in place (capacity kept), restoring the
    /// just-constructed behaviour — used to replay training runs from the
    /// same starting point without reallocating the state buffers.
    fn reset(&mut self) {}
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params) {
        if self.velocity.is_empty() {
            self.velocity = params
                .ids()
                .map(|id| Matrix::zeros(params.value(id).rows(), params.value(id).cols()))
                .collect();
        }
        // Two borrow phases per parameter — velocity update reads the
        // gradient, then the weight update reads the velocity — so no
        // clones are needed and steady-state steps allocate nothing.
        for k in 0..params.len() {
            let id = ParamId(k);
            let v = &mut self.velocity[k];
            for (vv, gv) in v.data_mut().iter_mut().zip(params.grad(id).data()) {
                *vv = self.momentum * *vv + gv;
            }
            let lr = self.lr;
            let v = &self.velocity[k];
            for (p, vv) in params.value_mut(id).data_mut().iter_mut().zip(v.data()) {
                *p -= lr * vv;
            }
        }
    }

    fn reset(&mut self) {
        for v in &mut self.velocity {
            v.data_mut().fill(0.0);
        }
    }
}

/// Adam (Kingma & Ba) — the optimizer the OGB baselines train with.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    step: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params) {
        if self.m.is_empty() {
            self.m = params
                .ids()
                .map(|id| Matrix::zeros(params.value(id).rows(), params.value(id).cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        // Same two-phase borrow discipline as SGD: moment update reads the
        // gradient, weight update reads the moments — clone-free, so
        // steady-state steps allocate nothing.
        for k in 0..params.len() {
            let id = ParamId(k);
            let (m, v) = (&mut self.m[k], &mut self.v[k]);
            for ((mm, vv), gv) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(params.grad(id).data())
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let (lr, eps) = (self.lr, self.eps);
            let (m, v) = (&self.m[k], &self.v[k]);
            for ((p, mm), vv) in params
                .value_mut(id)
                .data_mut()
                .iter_mut()
                .zip(m.data())
                .zip(v.data())
            {
                let mhat = mm / bc1;
                let vhat = vv / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn reset(&mut self) {
        self.step = 0;
        for m in &mut self.m {
            m.data_mut().fill(0.0);
        }
        for v in &mut self.v {
            v.data_mut().fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = ||w - target||² with each optimizer.
    fn quadratic_descent(mut opt: impl Optimizer, iters: usize) -> f32 {
        let mut params = Params::new();
        let target = [3.0f32, -2.0];
        let w = params.add("w", Matrix::zeros(1, 2));
        for _ in 0..iters {
            params.zero_grads();
            let grad = Matrix::from_vec(
                1,
                2,
                params
                    .value(w)
                    .data()
                    .iter()
                    .zip(target)
                    .map(|(p, t)| 2.0 * (p - t))
                    .collect(),
            );
            params.accumulate_grad(w, &grad);
            opt.step(&mut params);
        }
        params
            .value(w)
            .data()
            .iter()
            .zip(target)
            .map(|(p, t)| (p - t).powi(2))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let dist = quadratic_descent(Sgd::new(0.1, 0.0), 100);
        assert!(dist < 1e-3, "distance {dist}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let dist = quadratic_descent(Sgd::new(0.05, 0.9), 200);
        assert!(dist < 1e-2, "distance {dist}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let dist = quadratic_descent(Adam::new(0.1), 300);
        assert!(dist < 1e-2, "distance {dist}");
    }

    #[test]
    fn adam_step_size_is_bounded_by_lr() {
        // Adam's first update has magnitude ≈ lr regardless of gradient
        // scale.
        let mut params = Params::new();
        let w = params.add("w", Matrix::zeros(1, 1));
        params.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![1e6]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut params);
        let p = params.value(w).get(0, 0);
        assert!((p.abs() - 0.01).abs() < 1e-4, "first Adam step {p}");
    }
}
