//! # wg-autograd — tape-based reverse-mode automatic differentiation
//!
//! WholeGraph "makes use of the automatic differentiation module in
//! PyTorch"; this crate is the equivalent substrate for our reproduction: a
//! small define-by-run tape over [`wg_tensor`] with exactly the ops the
//! three GNN models (GCN, GraphSage, GAT) need — dense linear algebra,
//! activations, dropout, and the sparse g-SpMM / g-SDDMM / edge-softmax
//! message-passing ops of §III-C4.
//!
//! * [`params`] — named parameter store with gradient slots (plus the
//!   data-parallel gradient averaging that stands in for Apex DDP's
//!   AllReduce, §III-D);
//! * [`tape`] — the autograd tape: forward ops record their inputs, and
//!   [`tape::Tape::backward`] walks the tape in reverse accumulating
//!   gradients into the parameter store;
//! * [`optim`] — SGD and Adam.

pub mod checkpoint;
pub mod optim;
pub mod params;
pub mod tape;
pub mod workspace;

pub use checkpoint::{load_params, save_params};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{average_gradients, ParamId, Params};
pub use tape::{NodeId, Tape};
pub use workspace::Workspace;
