//! Parameter storage and data-parallel gradient averaging.

use rand::rngs::SmallRng;

use wg_tensor::Matrix;

/// Handle to one parameter tensor in a [`Params`] store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

/// A named collection of trainable tensors with gradient slots.
#[derive(Clone, Debug, Default)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl Params {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: &str, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.to_string());
        id
    }

    /// Register a Xavier-initialized `[fan_in, fan_out]` weight.
    pub fn add_xavier(
        &mut self,
        name: &str,
        fan_in: usize,
        fan_out: usize,
        rng: &mut SmallRng,
    ) -> ParamId {
        self.add(name, Matrix::xavier(fan_in, fan_out, rng))
    }

    /// Register a zero-initialized `[1, n]` bias.
    pub fn add_bias(&mut self, name: &str, n: usize) -> ParamId {
        self.add(name, Matrix::zeros(1, n))
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Bytes of parameter data (f32).
    pub fn param_bytes(&self) -> u64 {
        (self.num_scalars() * 4) as u64
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (optimizer updates).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable gradient (gradient synchronization: AllReduce averaging,
    /// compression residuals).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Accumulate into a parameter's gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        let slot = &mut self.grads[id.0];
        assert_eq!(
            (slot.rows(), slot.cols()),
            (g.rows(), g.cols()),
            "gradient shape mismatch"
        );
        for (a, b) in slot.data_mut().iter_mut().zip(g.data()) {
            *a += b;
        }
    }

    /// Zero all gradients (start of an iteration).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterate `(id, name)`.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.values.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip gradients to a global L2 norm (training stability).
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                for v in g.data_mut() {
                    *v *= s;
                }
            }
        }
    }
}

/// Average gradients across data-parallel replicas in place — the
/// stand-in for the AllReduce Apex DDP performs after every backward
/// (§III-D: "all GPUs synchronize the computed gradients with each other
/// using the Allreduce communication").
///
/// All replicas must have identical parameter shapes. After the call,
/// every replica holds the element-wise mean of all gradients.
pub fn average_gradients(replicas: &mut [&mut Params]) {
    let n = replicas.len();
    if n <= 1 {
        return;
    }
    let num_params = replicas[0].len();
    for r in replicas.iter() {
        assert_eq!(
            r.len(),
            num_params,
            "replicas have different parameter counts"
        );
    }
    for p in 0..num_params {
        let len = replicas[0].grads[p].len();
        let mut sum = vec![0.0f32; len];
        for r in replicas.iter() {
            for (s, v) in sum.iter_mut().zip(r.grads[p].data()) {
                *s += v;
            }
        }
        let inv = 1.0 / n as f32;
        for r in replicas.iter_mut() {
            for (g, s) in r.grads[p].data_mut().iter_mut().zip(&sum) {
                *g = s * inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_accumulate() {
        let mut p = Params::new();
        let w = p.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(p.name(w), "w");
        assert_eq!(p.num_scalars(), 2);
        assert_eq!(p.param_bytes(), 8);
        p.accumulate_grad(w, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        p.accumulate_grad(w, &Matrix::from_vec(1, 2, vec![0.5, 1.0]));
        assert_eq!(p.grad(w).data(), &[1.0, 1.5]);
        p.zero_grads();
        assert_eq!(p.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_clipping() {
        let mut p = Params::new();
        let w = p.add("w", Matrix::zeros(1, 2));
        p.accumulate_grad(w, &Matrix::from_vec(1, 2, vec![3.0, 4.0])); // norm 5
        p.clip_grad_norm(1.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-6);
        assert!((p.grad(w).get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn xavier_param_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = Params::new();
        let w = p.add_xavier("w", 4, 8, &mut rng);
        let b = p.add_bias("b", 8);
        assert_eq!((p.value(w).rows(), p.value(w).cols()), (4, 8));
        assert_eq!((p.value(b).rows(), p.value(b).cols()), (1, 8));
    }

    #[test]
    fn allreduce_averages_gradients() {
        let mut a = Params::new();
        let mut b = Params::new();
        let ai = a.add("w", Matrix::zeros(1, 2));
        let bi = b.add("w", Matrix::zeros(1, 2));
        a.accumulate_grad(ai, &Matrix::from_vec(1, 2, vec![1.0, 3.0]));
        b.accumulate_grad(bi, &Matrix::from_vec(1, 2, vec![3.0, 5.0]));
        average_gradients(&mut [&mut a, &mut b]);
        assert_eq!(a.grad(ai).data(), &[2.0, 4.0]);
        assert_eq!(b.grad(bi).data(), &[2.0, 4.0]);
    }

    #[test]
    fn single_replica_allreduce_is_noop() {
        let mut a = Params::new();
        let ai = a.add("w", Matrix::zeros(1, 1));
        a.accumulate_grad(ai, &Matrix::from_vec(1, 1, vec![7.0]));
        average_gradients(&mut [&mut a]);
        assert_eq!(a.grad(ai).data(), &[7.0]);
    }
}
