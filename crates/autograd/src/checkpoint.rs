//! Model checkpointing: save/restore a [`Params`] store to disk.
//!
//! Little-endian binary format with a header, per-tensor name + shape, and
//! raw f32 data; loading validates names and shapes against the live store
//! so a checkpoint can only be restored into the architecture that wrote
//! it.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use wg_tensor::Matrix;

use crate::params::Params;

const MAGIC: &[u8; 4] = b"WGCK";
const VERSION: u32 = 1;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write every parameter tensor (values only, not optimizer state) to
/// `path`.
pub fn save_params(params: &Params, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for id in params.ids() {
        let name = params.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let m = params.value(id);
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Restore parameter values from `path` into `params`. Every tensor must
/// match the store by position, name and shape.
pub fn load_params(params: &mut Params, path: impl AsRef<Path>) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a WGCK checkpoint".into()));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    r.read_exact(&mut b4)?;
    let count = u32::from_le_bytes(b4) as usize;
    if count != params.len() {
        return Err(bad(format!(
            "checkpoint has {count} tensors, model has {}",
            params.len()
        )));
    }
    let ids: Vec<_> = params.ids().collect();
    let mut b8 = [0u8; 8];
    for id in ids {
        r.read_exact(&mut b4)?;
        let name_len = u32::from_le_bytes(b4) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|e| bad(e.to_string()))?;
        if name != params.name(id) {
            return Err(bad(format!(
                "tensor name mismatch: checkpoint '{name}' vs model '{}'",
                params.name(id)
            )));
        }
        r.read_exact(&mut b8)?;
        let rows = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let cols = u64::from_le_bytes(b8) as usize;
        let live = params.value(id);
        if (rows, cols) != (live.rows(), live.cols()) {
            return Err(bad(format!(
                "shape mismatch for '{name}': checkpoint {rows}x{cols} vs model {}x{}",
                live.rows(),
                live.cols()
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        let mut fb = [0u8; 4];
        for _ in 0..rows * cols {
            r.read_exact(&mut fb)?;
            data.push(f32::from_le_bytes(fb));
        }
        *params.value_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wgck-test-{name}-{}", std::process::id()));
        p
    }

    fn model_params(seed: u64) -> Params {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Params::new();
        p.add_xavier("layer0.w", 8, 4, &mut rng);
        p.add_bias("layer0.b", 4);
        p.add_xavier("layer1.w", 4, 2, &mut rng);
        p
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = model_params(1);
        let path = tmp("roundtrip");
        save_params(&src, &path).unwrap();
        let mut dst = model_params(2); // different init
        load_params(&mut dst, &path).unwrap();
        std::fs::remove_file(&path).ok();
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = model_params(1);
        let path = tmp("mismatch");
        save_params(&src, &path).unwrap();
        // A store with a different tensor count.
        let mut other = Params::new();
        other.add_bias("only.b", 4);
        let err = load_params(&mut other, &path).unwrap_err();
        assert!(err.to_string().contains("tensors"));
        // Same count, different shape.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut wrong = Params::new();
        wrong.add_xavier("layer0.w", 8, 5, &mut rng); // 5 != 4
        wrong.add_bias("layer0.b", 4);
        wrong.add_xavier("layer1.w", 4, 2, &mut rng);
        let err = load_params(&mut wrong, &path).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"nope").unwrap();
        let mut p = model_params(1);
        assert!(load_params(&mut p, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
