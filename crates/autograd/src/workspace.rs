//! Pooled scratch memory for the training math path.
//!
//! WholeGraph's per-iteration math (§III-C3, §III-D) runs out of
//! preallocated device memory — nothing on the hot path asks the
//! allocator for anything. [`Workspace`] is the reproduction's analogue: a
//! free-list of `f32`/`u32` buffers that forward activations, gradients
//! and kernel scratch are drawn from and returned to, so a tape that is
//! [`reset`](crate::Tape::reset) between batches reuses the previous
//! batch's buffers instead of reallocating them. Because the training
//! loop requests the same shape sequence every iteration, the pool's
//! capacities converge after the first batch and steady-state epochs
//! perform (almost) zero heap allocations.

use wg_tensor::matrix::Matrix;
use wg_tensor::sparse::ReverseScratch;

/// Upper bound on retained buffers per pool — a backstop so a pathological
/// op sequence cannot hoard unbounded memory. A GNN forward/backward
/// records a few nodes per layer, so real tapes sit far below this.
const MAX_POOLED: usize = 96;

/// A free-list of reusable buffers plus the named scratch the blocked
/// kernels need (`matmul_tn` partial slab, spmm reverse-CSR).
#[derive(Default)]
pub struct Workspace {
    f32_pool: Vec<Vec<f32>>,
    u32_pool: Vec<Vec<u32>>,
    /// Partial-sum slab for [`wg_tensor::ops::matmul_tn_into`].
    pub tn_scratch: Vec<f32>,
    /// Transposed-`B` panel for [`wg_tensor::ops::matmul_nt_into`].
    pub nt_scratch: Vec<f32>,
    /// Transposed-CSR scratch for
    /// [`wg_tensor::sparse::spmm_backward_src_into`].
    pub rev: ReverseScratch,
}

/// Pick the pooled buffer to hand out for a `len`-element request: the
/// smallest buffer whose capacity already fits (no growth), else the
/// largest buffer (grows once, then fits forever).
fn best_slot<T>(pool: &[Vec<T>], len: usize) -> Option<usize> {
    let mut fit: Option<usize> = None;
    let mut largest: Option<usize> = None;
    for (i, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        if cap >= len && fit.is_none_or(|j| pool[j].capacity() > cap) {
            fit = Some(i);
        }
        if largest.is_none_or(|j| pool[j].capacity() < cap) {
            largest = Some(i);
        }
    }
    fit.or(largest)
}

impl Workspace {
    /// Fresh empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared `f32` buffer, preferably with capacity ≥ `len`.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        match best_slot(&self.f32_pool, len) {
            Some(i) => self.f32_pool.swap_remove(i),
            None => Vec::with_capacity(len),
        }
    }

    /// Return an `f32` buffer to the pool (contents discarded).
    pub fn recycle_f32(&mut self, mut buf: Vec<f32>) {
        if buf.capacity() == 0 || self.f32_pool.len() >= MAX_POOLED {
            return;
        }
        buf.clear();
        self.f32_pool.push(buf);
    }

    /// A cleared `u32` buffer, preferably with capacity ≥ `len`.
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        match best_slot(&self.u32_pool, len) {
            Some(i) => self.u32_pool.swap_remove(i),
            None => Vec::with_capacity(len),
        }
    }

    /// Return a `u32` buffer to the pool (contents discarded).
    pub fn recycle_u32(&mut self, mut buf: Vec<u32>) {
        if buf.capacity() == 0 || self.u32_pool.len() >= MAX_POOLED {
            return;
        }
        buf.clear();
        self.u32_pool.push(buf);
    }

    /// A pooled `0×0` matrix whose buffer can hold `len` floats — the
    /// shape the `*_into` kernels expect (they `reset_shape` it
    /// themselves).
    pub fn matrix_with_capacity(&mut self, len: usize) -> Matrix {
        Matrix::from_vec(0, 0, self.take_f32(len))
    }

    /// A pooled zero matrix of the given shape.
    pub fn matrix_zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.take_f32(rows * cols);
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// A pooled copy of `src`.
    pub fn matrix_from(&mut self, src: &Matrix) -> Matrix {
        let mut buf = self.take_f32(src.len());
        buf.extend_from_slice(src.data());
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Return a matrix's buffer to the pool.
    pub fn recycle_matrix(&mut self, m: Matrix) {
        self.recycle_f32(m.into_vec());
    }

    /// Buffers currently parked in the pools (tests / introspection).
    pub fn pooled_buffers(&self) -> usize {
        self.f32_pool.len() + self.u32_pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_smallest_fitting_buffer() {
        let mut ws = Workspace::new();
        ws.recycle_f32(Vec::with_capacity(100));
        ws.recycle_f32(Vec::with_capacity(10));
        let b = ws.take_f32(8);
        assert_eq!(b.capacity(), 10, "best fit should win");
        let b2 = ws.take_f32(8);
        assert_eq!(b2.capacity(), 100, "then the remaining buffer");
    }

    #[test]
    fn take_grows_largest_when_nothing_fits() {
        let mut ws = Workspace::new();
        ws.recycle_f32(Vec::with_capacity(4));
        ws.recycle_f32(Vec::with_capacity(16));
        let b = ws.take_f32(64);
        // Handed the 16-cap buffer: the caller's resize grows it once and
        // the pool converges.
        assert!(b.capacity() >= 16);
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn matrix_round_trip_reuses_capacity() {
        let mut ws = Workspace::new();
        let m = ws.matrix_zeros(8, 8);
        let ptr = m.data().as_ptr();
        ws.recycle_matrix(m);
        let m2 = ws.matrix_from(&Matrix::zeros(4, 4));
        assert_eq!(m2.data().as_ptr(), ptr, "same buffer came back");
        assert_eq!((m2.rows(), m2.cols()), (4, 4));
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle_f32(Vec::new());
        ws.recycle_u32(Vec::new());
        assert_eq!(ws.pooled_buffers(), 0);
    }
}
