//! The autograd tape.
//!
//! A define-by-run tape: every forward op appends a node recording its
//! inputs (and whatever saved state its backward needs); `backward` seeds a
//! gradient at the output node and walks the tape in reverse, accumulating
//! into intermediate grads and, for parameter leaves, into the [`Params`]
//! store. This mirrors how WholeGraph leans on PyTorch autograd while
//! supplying custom forward/backward kernels for the sparse ops.

#![allow(clippy::needless_range_loop)] // kernel-style indexed loops

use std::sync::Arc;

use wg_tensor::matrix::Matrix;
use wg_tensor::ops;
use wg_tensor::sparse::{self, Agg, BlockCsr};

use crate::params::{ParamId, Params};
use crate::workspace::Workspace;

/// Handle to a tape node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(usize);

impl NodeId {
    /// The first node recorded on a tape. GNN forward passes record their
    /// gathered-input matrix first, so this is how embedding-table callers
    /// retrieve the gradient w.r.t. the inputs after `backward`.
    pub fn first() -> NodeId {
        NodeId(0)
    }
}

enum Op {
    /// Constant input (no gradient).
    Input,
    /// Parameter leaf: gradient flows into `Params`.
    Param(ParamId),
    /// `a · b`.
    Matmul(NodeId, NodeId),
    /// `a + b` (same shape).
    Add(NodeId, NodeId),
    /// `x + bias` (bias is a `[1, n]` node broadcast over rows).
    Bias(NodeId, NodeId),
    /// ReLU; saved input is the argument node's value.
    Relu(NodeId),
    /// ELU; backward uses this node's own (output) value.
    Elu(NodeId, f32),
    /// LeakyReLU with slope; saved input is the argument's value.
    LeakyRelu(NodeId, f32),
    /// Inverted dropout with saved mask.
    Dropout(NodeId, Vec<f32>),
    /// `[a | b]` column concat.
    ConcatCols(NodeId, NodeId),
    /// First `n` rows of `x` (targets-first feature reuse).
    TopRows(NodeId, usize),
    /// `x * s`.
    Scale(NodeId, f32),
    /// g-SpMM over a block (optionally edge-weighted, multi-head).
    Spmm {
        src: NodeId,
        weights: Option<NodeId>,
        block: Arc<BlockCsr>,
        heads: usize,
        agg: Agg,
    },
    /// g-SpMM with max aggregation; saved argmax routes the backward.
    SpmmMax {
        src: NodeId,
        block: Arc<BlockCsr>,
        argmax: Vec<u32>,
    },
    /// Per-dst edge softmax; backward uses this node's output value.
    EdgeSoftmax {
        logits: NodeId,
        block: Arc<BlockCsr>,
    },
    /// Per-edge sum of a dst-side and a src-side per-node score:
    /// `out[e, h] = dst[d(e), h] + src[s(e), h]` (GAT attention logits).
    EdgeScores {
        dst: NodeId,
        src: NodeId,
        block: Arc<BlockCsr>,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// An autograd tape (one forward pass at a time). Owns a [`Workspace`]
/// buffer pool: [`Tape::reset`] recycles every node's value, gradient and
/// saved op state back into the pool, so a long-lived tape that is reset
/// between batches records subsequent passes without heap allocation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    ws: Workspace,
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the tape for the next forward pass, recycling every node's
    /// buffers into the workspace pool. The node list keeps its capacity,
    /// so a reset tape records the same op sequence allocation-free.
    pub fn reset(&mut self) {
        let Tape { nodes, ws } = self;
        for node in nodes.drain(..) {
            ws.recycle_matrix(node.value);
            if let Some(g) = node.grad {
                ws.recycle_matrix(g);
            }
            match node.op {
                Op::Dropout(_, mask) => ws.recycle_f32(mask),
                Op::SpmmMax { argmax, .. } => ws.recycle_u32(argmax),
                _ => {}
            }
        }
    }

    /// A pooled zero matrix from the tape's workspace — the generalized
    /// counterpart of [`Tape::take_value`] for callers (loss gradients,
    /// scratch) that want to participate in the tape's buffer recycling.
    pub fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        self.ws.matrix_zeros(rows, cols)
    }

    /// Return a matrix taken via [`Tape::alloc`]/[`Tape::take_value`] to
    /// the workspace pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.ws.recycle_matrix(m);
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after `backward` (None if no gradient reached it).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Move a node's value matrix out of the tape, leaving an empty matrix
    /// behind. Lets callers reclaim a large buffer (e.g. the gathered input
    /// features at [`NodeId::first`]) once the tape is done with it — after
    /// `backward`, before the tape is dropped.
    pub fn take_value(&mut self, id: NodeId) -> Matrix {
        std::mem::replace(
            &mut self.nodes[id.0].value,
            Matrix::from_vec(0, 0, Vec::new()),
        )
    }

    /// Constant input (e.g. gathered features).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Parameter leaf: snapshots the current value from `params`.
    pub fn param(&mut self, params: &Params, id: ParamId) -> NodeId {
        let v = self.ws.matrix_from(params.value(id));
        self.push(v, Op::Param(id))
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self
            .ws
            .matrix_with_capacity(self.nodes[a.0].value.rows() * self.nodes[b.0].value.cols());
        ops::matmul_into(&self.nodes[a.0].value, &self.nodes[b.0].value, &mut v);
        self.push(v, Op::Matmul(a, b))
    }

    /// `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.ws.matrix_with_capacity(self.nodes[a.0].value.len());
        ops::add_into(&self.nodes[a.0].value, &self.nodes[b.0].value, &mut v);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast-add a `[1, n]` bias node to every row of `x`.
    pub fn bias(&mut self, x: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.nodes[b.0].value.rows(), 1, "bias must be a row vector");
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        ops::add_bias(&mut v, self.nodes[b.0].value.row(0));
        self.push(v, Op::Bias(x, b))
    }

    /// ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        ops::relu(&mut v);
        self.push(v, Op::Relu(x))
    }

    /// ELU (GAT's activation).
    pub fn elu(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        ops::elu(&mut v, alpha);
        self.push(v, Op::Elu(x, alpha))
    }

    /// LeakyReLU (GAT attention logits).
    pub fn leaky_relu(&mut self, x: NodeId, slope: f32) -> NodeId {
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        ops::leaky_relu(v.data_mut(), slope);
        self.push(v, Op::LeakyRelu(x, slope))
    }

    /// Inverted dropout (training mode; pass `p = 0` to disable).
    pub fn dropout(&mut self, x: NodeId, p: f32, seed: u64) -> NodeId {
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        let mut mask = self.ws.take_f32(if p == 0.0 { 0 } else { v.len() });
        ops::dropout_into(&mut v, p, seed, &mut mask);
        self.push(v, Op::Dropout(x, mask))
    }

    /// `[a | b]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self
            .ws
            .matrix_with_capacity(self.nodes[a.0].value.len() + self.nodes[b.0].value.len());
        ops::concat_cols_into(&self.nodes[a.0].value, &self.nodes[b.0].value, &mut v);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// First `n` rows of `x`.
    pub fn top_rows(&mut self, x: NodeId, n: usize) -> NodeId {
        let cols = self.nodes[x.0].value.cols();
        let mut buf = self.ws.take_f32(n * cols);
        buf.extend_from_slice(&self.nodes[x.0].value.data()[..n * cols]);
        let v = Matrix::from_vec(n, cols, buf);
        self.push(v, Op::TopRows(x, n))
    }

    /// `x · s`.
    pub fn scale(&mut self, x: NodeId, s: f32) -> NodeId {
        let mut v = self.ws.matrix_from(&self.nodes[x.0].value);
        ops::scale(&mut v, s);
        self.push(v, Op::Scale(x, s))
    }

    /// g-SpMM message passing over `block` (optionally edge-weighted,
    /// multi-head).
    pub fn spmm(
        &mut self,
        block: Arc<BlockCsr>,
        src: NodeId,
        weights: Option<NodeId>,
        heads: usize,
        agg: Agg,
    ) -> NodeId {
        let mut v = self
            .ws
            .matrix_with_capacity(block.num_dst * self.nodes[src.0].value.cols());
        {
            let w = weights.map(|w| &self.nodes[w.0].value);
            sparse::spmm_into(&block, &self.nodes[src.0].value, w, heads, agg, &mut v);
        }
        self.push(
            v,
            Op::Spmm {
                src,
                weights,
                block,
                heads,
                agg,
            },
        )
    }

    /// g-SpMM with max aggregation (GraphSage-pool style).
    pub fn spmm_max(&mut self, block: Arc<BlockCsr>, src: NodeId) -> NodeId {
        let (v, argmax) = sparse::spmm_max(&block, self.value(src));
        self.push(v, Op::SpmmMax { src, block, argmax })
    }

    /// Per-dst, per-head edge softmax over `block`.
    pub fn edge_softmax(&mut self, block: Arc<BlockCsr>, logits: NodeId) -> NodeId {
        let v = sparse::edge_softmax(&block, self.value(logits));
        self.push(v, Op::EdgeSoftmax { logits, block })
    }

    /// GAT attention logits: `out[e, h] = dst_scores[d(e), h] +
    /// src_scores[s(e), h]` over the block's edges.
    pub fn edge_scores(&mut self, block: Arc<BlockCsr>, dst: NodeId, src: NodeId) -> NodeId {
        let d = self.value(dst);
        let s = self.value(src);
        assert_eq!(d.rows(), block.num_dst);
        assert_eq!(s.rows(), block.num_src);
        assert_eq!(d.cols(), s.cols());
        let heads = d.cols();
        let mut v = self.ws.matrix_zeros(block.num_edges(), heads);
        let d = &self.nodes[dst.0].value;
        let s = &self.nodes[src.0].value;
        for dd in 0..block.num_dst {
            for e in block.offsets[dd] as usize..block.offsets[dd + 1] as usize {
                let ss = block.indices[e] as usize;
                for h in 0..heads {
                    v.set(e, h, d.get(dd, h) + s.get(ss, h));
                }
            }
        }
        self.push(v, Op::EdgeScores { dst, src, block })
    }

    /// Backward pass: seed `seed_grad` at `output` and accumulate
    /// parameter gradients into `params`.
    pub fn backward(&mut self, output: NodeId, seed_grad: Matrix, params: &mut Params) {
        {
            let out = &mut self.nodes[output.0];
            assert_eq!(
                (out.value.rows(), out.value.cols()),
                (seed_grad.rows(), seed_grad.cols()),
                "seed gradient shape mismatch"
            );
            out.grad = Some(seed_grad);
        }
        for i in (0..=output.0).rev() {
            let Some(grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Re-insert so callers can inspect grads afterwards.
            self.propagate(i, &grad, params);
            self.nodes[i].grad = Some(grad);
        }
    }

    fn accumulate(&mut self, id: NodeId, g: Matrix) {
        let slot = &mut self.nodes[id.0].grad;
        match slot {
            None => *slot = Some(g),
            Some(acc) => {
                for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
                    *a += b;
                }
                // The merged contribution goes straight back to the pool.
                self.ws.recycle_matrix(g);
            }
        }
    }

    fn propagate(&mut self, i: usize, grad: &Matrix, params: &mut Params) {
        // Take op by reference via a raw split to satisfy the borrow
        // checker: ops never alias the node's own grad slot.
        let op = std::ptr::addr_of!(self.nodes[i].op);
        // SAFETY: `accumulate` only touches *other* nodes' grad slots and
        // the workspace pool, and never resizes `self.nodes`; the op enum
        // itself is not mutated.
        let op: &Op = unsafe { &*op };
        match op {
            Op::Input => {}
            Op::Param(pid) => params.accumulate_grad(*pid, grad),
            Op::Matmul(a, b) => {
                let (a, b) = (*a, *b);
                let mut ga = self
                    .ws
                    .matrix_with_capacity(grad.rows() * self.nodes[b.0].value.rows());
                ops::matmul_nt_into(
                    grad,
                    &self.nodes[b.0].value,
                    &mut ga,
                    &mut self.ws.nt_scratch,
                );
                let mut gb = self
                    .ws
                    .matrix_with_capacity(self.nodes[a.0].value.cols() * grad.cols());
                ops::matmul_tn_into(
                    &self.nodes[a.0].value,
                    grad,
                    &mut gb,
                    &mut self.ws.tn_scratch,
                );
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                let ga = self.ws.matrix_from(grad);
                self.accumulate(a, ga);
                let gb = self.ws.matrix_from(grad);
                self.accumulate(b, gb);
            }
            Op::Bias(x, b) => {
                let (x, b) = (*x, *b);
                let gx = self.ws.matrix_from(grad);
                self.accumulate(x, gx);
                let mut gb = self.ws.matrix_zeros(1, grad.cols());
                ops::sum_rows_into(grad, gb.data_mut());
                self.accumulate(b, gb);
            }
            Op::Relu(x) => {
                let x = *x;
                let mut g = self.ws.matrix_from(grad);
                ops::relu_backward(&mut g, &self.nodes[x.0].value);
                self.accumulate(x, g);
            }
            Op::Elu(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                let mut g = self.ws.matrix_from(grad);
                ops::elu_backward(&mut g, &self.nodes[i].value, alpha);
                self.accumulate(x, g);
            }
            Op::LeakyRelu(x, slope) => {
                let (x, slope) = (*x, *slope);
                let mut g = self.ws.matrix_from(grad);
                ops::leaky_relu_backward(g.data_mut(), self.nodes[x.0].value.data(), slope);
                self.accumulate(x, g);
            }
            Op::Dropout(x, mask) => {
                let x = *x;
                let mut g = self.ws.matrix_from(grad);
                if !mask.is_empty() {
                    for (v, m) in g.data_mut().iter_mut().zip(mask.iter()) {
                        *v *= m;
                    }
                }
                self.accumulate(x, g);
            }
            Op::ConcatCols(a, b) => {
                let (a, b) = (*a, *b);
                let na = self.nodes[a.0].value.cols();
                let mut ga = self.ws.matrix_with_capacity(grad.rows() * na);
                let mut gb = self
                    .ws
                    .matrix_with_capacity(grad.rows() * (grad.cols() - na));
                ops::split_cols_into(grad, na, &mut ga, &mut gb);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::TopRows(x, n) => {
                let (x, n) = (*x, *n);
                let (rows, cols) = {
                    let src = &self.nodes[x.0].value;
                    (src.rows(), src.cols())
                };
                let mut g = self.ws.matrix_zeros(rows, cols);
                g.data_mut()[..n * cols].copy_from_slice(grad.data());
                self.accumulate(x, g);
            }
            Op::Scale(x, s) => {
                let (x, s) = (*x, *s);
                let mut g = self.ws.matrix_from(grad);
                ops::scale(&mut g, s);
                self.accumulate(x, g);
            }
            Op::Spmm {
                src,
                weights,
                block,
                heads,
                agg,
            } => {
                let (src, weights, heads, agg) = (*src, *weights, *heads, *agg);
                let block = Arc::clone(block);
                let mut gsrc = self.ws.matrix_with_capacity(block.num_src * grad.cols());
                {
                    let w = weights.map(|w| &self.nodes[w.0].value);
                    sparse::spmm_backward_src_into(
                        &block,
                        grad,
                        w,
                        heads,
                        agg,
                        &mut gsrc,
                        &mut self.ws.rev,
                    );
                }
                self.accumulate(src, gsrc);
                if let Some(w) = weights {
                    // dL/dw = g-SDDMM(grad_dst, src) with the forward scale.
                    let gw = sparse::sddmm(&block, grad, &self.nodes[src.0].value, heads, agg);
                    self.accumulate(w, gw);
                }
            }
            Op::SpmmMax { src, block, argmax } => {
                let src = *src;
                let block = Arc::clone(block);
                // Pooled copy of argmax sidesteps the self-borrow.
                let mut am = self.ws.take_u32(argmax.len());
                am.extend_from_slice(argmax);
                let g = sparse::spmm_max_backward(&block, grad, &am);
                self.ws.recycle_u32(am);
                self.accumulate(src, g);
            }
            Op::EdgeSoftmax { logits, block } => {
                let logits = *logits;
                let block = Arc::clone(block);
                let g = sparse::edge_softmax_backward(&block, &self.nodes[i].value, grad);
                self.accumulate(logits, g);
            }
            Op::EdgeScores { dst, src, block } => {
                let (dst, src) = (*dst, *src);
                let block = Arc::clone(block);
                let heads = grad.cols();
                let mut gd = self.ws.matrix_zeros(block.num_dst, heads);
                let mut gs = self.ws.matrix_zeros(block.num_src, heads);
                for d in 0..block.num_dst {
                    for e in block.offsets[d] as usize..block.offsets[d + 1] as usize {
                        let s = block.indices[e] as usize;
                        for h in 0..heads {
                            let g = grad.get(e, h);
                            gd.set(d, h, gd.get(d, h) + g);
                            gs.set(s, h, gs.get(s, h) + g);
                        }
                    }
                }
                self.accumulate(dst, gd);
                self.accumulate(src, gs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    use wg_tensor::ops::softmax_cross_entropy;

    fn randm(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn tiny_block() -> Arc<BlockCsr> {
        Arc::new(BlockCsr {
            num_dst: 2,
            num_src: 4,
            offsets: vec![0, 2, 3],
            indices: vec![2, 3, 2],
            dup_count: vec![0, 0, 2, 1],
        })
    }

    /// Scalar loss = <output, probe> used for finite-difference checks.
    fn probe_loss(out: &Matrix, probe: &Matrix) -> f32 {
        out.data()
            .iter()
            .zip(probe.data())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Check d(probe_loss ∘ f)/d(param) by central differences against the
    /// tape's accumulated parameter gradient.
    fn check_param_grad(
        build: &dyn Fn(&Params, &mut Tape) -> NodeId,
        params: &mut Params,
        pid: ParamId,
        probe: &Matrix,
    ) {
        let mut tape = Tape::new();
        let out = build(params, &mut tape);
        params.zero_grads();
        tape.backward(out, probe.clone(), params);
        let analytic = params.grad(pid).clone();

        let eps = 1e-3f32;
        for idx in 0..params.value(pid).len().min(6) {
            let orig = params.value(pid).data()[idx];
            params.value_mut(pid).data_mut()[idx] = orig + eps;
            let mut tp = Tape::new();
            let op = build(params, &mut tp);
            let lp = probe_loss(tp.value(op), probe);
            params.value_mut(pid).data_mut()[idx] = orig - eps;
            let mut tm = Tape::new();
            let om = build(params, &mut tm);
            let lm = probe_loss(tm.value(om), probe);
            params.value_mut(pid).data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = analytic.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "param elem {idx}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn linear_layer_gradients() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut params = Params::new();
        let w = params.add_xavier("w", 4, 3, &mut rng);
        let b = params.add_bias("b", 3);
        params
            .value_mut(b)
            .data_mut()
            .copy_from_slice(&[0.1, -0.2, 0.3]);
        let x = randm(5, 4, 2);
        let probe = randm(5, 3, 3);
        let xc = x.clone();
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(xc.clone());
            let wi = t.param(p, w);
            let bi = t.param(p, b);
            let h = t.matmul(xi, wi);
            t.bias(h, bi)
        };
        check_param_grad(&build, &mut params, w, &probe);
        check_param_grad(&build, &mut params, b, &probe);
    }

    #[test]
    fn relu_mlp_gradients() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut params = Params::new();
        let w1 = params.add_xavier("w1", 3, 4, &mut rng);
        let w2 = params.add_xavier("w2", 4, 2, &mut rng);
        let x = randm(6, 3, 5);
        let probe = randm(6, 2, 6);
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(x.clone());
            let w1i = t.param(p, w1);
            let w2i = t.param(p, w2);
            let h = t.matmul(xi, w1i);
            let h = t.relu(h);
            t.matmul(h, w2i)
        };
        check_param_grad(&build, &mut params, w1, &probe);
        check_param_grad(&build, &mut params, w2, &probe);
    }

    #[test]
    fn spmm_layer_gradients() {
        let mut rng = SmallRng::seed_from_u64(7);
        let block = tiny_block();
        let mut params = Params::new();
        let w = params.add_xavier("w", 4, 3, &mut rng);
        let x = randm(4, 4, 8);
        let probe = randm(2, 3, 9);
        let b2 = Arc::clone(&block);
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(x.clone());
            let wi = t.param(p, w);
            let h = t.matmul(xi, wi); // [4,3] per-src transform
            t.spmm(Arc::clone(&b2), h, None, 1, Agg::Mean)
        };
        check_param_grad(&build, &mut params, w, &probe);
    }

    #[test]
    fn gat_attention_path_gradients() {
        // Full single-head GAT attention: scores -> leakyrelu -> softmax ->
        // weighted spmm, differentiated end to end.
        let mut rng = SmallRng::seed_from_u64(11);
        let block = tiny_block();
        let mut params = Params::new();
        let w = params.add_xavier("w", 3, 4, &mut rng);
        let a_dst = params.add_xavier("a_dst", 4, 1, &mut rng);
        let a_src = params.add_xavier("a_src", 4, 1, &mut rng);
        let x = randm(4, 3, 12);
        let probe = randm(2, 4, 13);
        let blk = Arc::clone(&block);
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(x.clone());
            let wi = t.param(p, w);
            let h = t.matmul(xi, wi); // [num_src, 4]
            let adi = t.param(p, a_dst);
            let asi = t.param(p, a_src);
            let sd_all = t.matmul(h, adi); // [num_src, 1]
            let sd = t.top_rows(sd_all, blk.num_dst);
            let ss = t.matmul(h, asi); // [num_src, 1]
            let logits = t.edge_scores(Arc::clone(&blk), sd, ss);
            let logits = t.leaky_relu(logits, 0.2);
            let att = t.edge_softmax(Arc::clone(&blk), logits);
            t.spmm(Arc::clone(&blk), h, Some(att), 1, Agg::Sum)
        };
        check_param_grad(&build, &mut params, w, &probe);
        check_param_grad(&build, &mut params, a_dst, &probe);
        check_param_grad(&build, &mut params, a_src, &probe);
    }

    #[test]
    fn spmm_max_path_gradients() {
        // GraphSage-pool shape: per-src transform, max-aggregate,
        // differentiated through the winning edges.
        let mut rng = SmallRng::seed_from_u64(61);
        let block = tiny_block();
        let mut params = Params::new();
        let w = params.add_xavier("w", 4, 3, &mut rng);
        let x = randm(4, 4, 62);
        let probe = randm(2, 3, 63);
        let blk = Arc::clone(&block);
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(x.clone());
            let wi = t.param(p, w);
            let h = t.matmul(xi, wi);
            t.spmm_max(Arc::clone(&blk), h)
        };
        check_param_grad(&build, &mut params, w, &probe);
    }

    #[test]
    fn concat_and_toprows_gradients() {
        let mut rng = SmallRng::seed_from_u64(20);
        let mut params = Params::new();
        let w = params.add_xavier("w", 6, 2, &mut rng);
        let x = randm(5, 3, 21);
        let probe = randm(3, 2, 22);
        let build = move |p: &Params, t: &mut Tape| {
            let xi = t.input(x.clone());
            let top = t.top_rows(xi, 3); // [3,3]
            let xi3 = t.input(randm(3, 3, 23)); // deterministic same value each call
            let cat = t.concat_cols(top, xi3); // [3,6]
            let wi = t.param(p, w);
            t.matmul(cat, wi)
        };
        check_param_grad(&build, &mut params, w, &probe);
    }

    #[test]
    fn end_to_end_training_step_reduces_loss() {
        // One gradient-descent step on a tiny classification problem must
        // reduce the loss.
        let mut rng = SmallRng::seed_from_u64(30);
        let mut params = Params::new();
        let w = params.add_xavier("w", 4, 3, &mut rng);
        let x = randm(8, 4, 31);
        let labels: Vec<u32> = (0..8).map(|i| (i % 3) as u32).collect();

        let run = |params: &Params| -> (f32, Matrix) {
            let mut t = Tape::new();
            let xi = t.input(x.clone());
            let wi = t.param(params, w);
            let out = t.matmul(xi, wi);
            let (loss, grad) = softmax_cross_entropy(t.value(out), &labels);
            (loss, grad)
        };
        let (loss0, _) = run(&params);
        // Proper step: forward, backward, SGD update.
        let mut t = Tape::new();
        let xi = t.input(x.clone());
        let wi = t.param(&params, w);
        let out = t.matmul(xi, wi);
        let (_, grad) = softmax_cross_entropy(t.value(out), &labels);
        params.zero_grads();
        t.backward(out, grad, &mut params);
        let g = params.grad(w).clone();
        for (v, gv) in params.value_mut(w).data_mut().iter_mut().zip(g.data()) {
            *v -= 0.5 * gv;
        }
        let (loss1, _) = run(&params);
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
    }

    #[test]
    fn reset_tape_reuse_is_bit_identical_to_fresh_tapes() {
        // The same three-step training loop run (a) with one long-lived
        // tape reset between steps and (b) with a fresh tape per step must
        // produce bit-identical parameter values: pooling recycles
        // buffers, never changes the math.
        let block = tiny_block();
        let x = randm(4, 4, 40);
        let labels: Vec<u32> = vec![0, 2, 1, 0][..2].to_vec();

        let train = |fresh_tapes: bool| -> Vec<f32> {
            let mut rng = SmallRng::seed_from_u64(41);
            let mut params = Params::new();
            let w = params.add_xavier("w", 4, 3, &mut rng);
            let b = params.add_bias("b", 3);
            let mut tape = Tape::new();
            for step in 0..3 {
                if fresh_tapes {
                    tape = Tape::new();
                } else {
                    tape.reset();
                }
                let xi = tape.input(x.clone());
                let wi = tape.param(&params, w);
                let bi = tape.param(&params, b);
                let h = tape.matmul(xi, wi);
                let h = tape.spmm(Arc::clone(&block), h, None, 1, Agg::Mean);
                let h = tape.bias(h, bi);
                let h = tape.relu(h);
                let out = tape.dropout(h, 0.25, 7 + step);
                let (_, grad) = softmax_cross_entropy(tape.value(out), &labels);
                params.zero_grads();
                tape.backward(out, grad, &mut params);
                let g = params.grad(w).clone();
                for (v, gv) in params.value_mut(w).data_mut().iter_mut().zip(g.data()) {
                    *v -= 0.1 * gv;
                }
            }
            let mut flat = params.value(w).data().to_vec();
            flat.extend_from_slice(params.value(b).data());
            flat
        };

        let pooled = train(false);
        let fresh = train(true);
        assert_eq!(
            pooled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn alloc_and_recycle_round_trip_through_reset() {
        let mut tape = Tape::new();
        let m = tape.alloc(4, 4);
        assert_eq!(m.data(), &[0.0; 16]);
        tape.recycle(m);
        // A reset tape hands pooled buffers back out without allocating a
        // larger one for a smaller request.
        tape.reset();
        let m2 = tape.alloc(2, 2);
        assert!(m2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grad_accumulates_across_fanout() {
        // A node used twice receives the sum of both downstream grads.
        let mut params = Params::new();
        let w = params.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut t = Tape::new();
        let wi = t.param(&params, w);
        let sum = t.add(wi, wi);
        params.zero_grads();
        t.backward(sum, Matrix::from_vec(1, 2, vec![1.0, 1.0]), &mut params);
        assert_eq!(params.grad(w).data(), &[2.0, 2.0]);
    }
}
