//! Calibrated cost models.
//!
//! Every constant in this module is fitted against a number the paper states
//! or plots; the doc comment on each item cites the source. The models are
//! deliberately simple (latency + volume/bandwidth, with a segment-size
//! efficiency curve for random access) — the paper's results are dominated by
//! *which link* data crosses and *how much* of it, which these models
//! capture.

use crate::device::DeviceSpec;
use crate::time::SimTime;
use crate::topology::{LinkKind, Path, Topology};

/// Which class of kernel a compute estimate is for; picks the efficiency
/// factor applied to the device's peak FLOP rate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelClass {
    /// Dense GEMM-shaped work (linear layers).
    Dense,
    /// Irregular, memory-bound work (SpMM, SDDMM, attention softmax over
    /// edges, sampling arithmetic).
    Sparse,
}

/// How a WholeMemory access reaches a remote GPU's memory (paper §II-B,
/// Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// GPUDirect Peer-to-Peer: load/store handled by hardware over NVLink.
    PeerAccess,
    /// CUDA Unified Memory: page fault → host interrupt → page migration.
    UnifiedMemory,
}

/// Cost model for the out-of-core NVMe storage tier below the DSM
/// (`wg_mem::ooc`). The shape mirrors the NVLink gather curve — a
/// per-request latency term plus a segment-size bandwidth knee — with
/// constants of a GIDS-class PCIe-4.0 datacenter SSD (PAPERS.md: "GPU-
/// initiated direct storage accesses"): reads below the 4 KiB native
/// page pay for the whole page, and per-request submission latency
/// amortizes over the device's queue depth, exactly as GIDS hides it
/// behind thousands of in-flight requests.
#[derive(Clone, Debug)]
pub struct StorageCostModel {
    /// Per-request submission + flash-access latency in seconds
    /// (~80 µs for a read-optimized datacenter NVMe drive).
    pub seek_latency_s: f64,
    /// In-flight requests the submission queues sustain; seek latency
    /// amortizes over this depth (GIDS keeps queues saturated, so the
    /// effective per-request latency is `seek / depth`).
    pub queue_depth: u32,
    /// Native flash page size in bytes: reads of smaller segments
    /// achieve bandwidth proportional to the segment size (the 4 KiB
    /// analogue of Figure 8's 64 B NVLink knee).
    pub knee_bytes: f64,
    /// Bandwidth achieved at exactly one page per request, bytes/s.
    pub knee_bandwidth: f64,
    /// Saturated sequential-read bandwidth, bytes/s (~6.8 GB/s for a
    /// PCIe-4.0 x4 drive).
    pub saturated_bandwidth: f64,
}

impl StorageCostModel {
    /// GIDS-class PCIe-4.0 NVMe constants.
    pub fn nvme() -> Self {
        StorageCostModel {
            seek_latency_s: 80.0e-6,
            queue_depth: 32,
            knee_bytes: 4096.0,
            knee_bandwidth: 6.0e9,
            saturated_bandwidth: 6.8e9,
        }
    }

    /// Achieved read bandwidth for random reads of `segment_bytes`-sized
    /// pieces — the same three-regime knee shape as
    /// [`CostModel::gather_busbw`], scaled to flash-page geometry.
    pub fn read_bandwidth(&self, segment_bytes: usize) -> f64 {
        let s = segment_bytes as f64;
        if s <= 0.0 {
            return 0.0;
        }
        if s < self.knee_bytes {
            // Sub-page reads transfer the whole page: proportional regime.
            self.knee_bandwidth * s / self.knee_bytes
        } else if s < 2.0 * self.knee_bytes {
            let t = (s - self.knee_bytes) / self.knee_bytes;
            self.knee_bandwidth + t * (self.saturated_bandwidth - self.knee_bandwidth)
        } else {
            self.saturated_bandwidth
        }
    }

    /// Time to serve `requests` random reads of `segment_bytes` each,
    /// with submission latency amortized over the queue depth. Zero
    /// requests cost zero: the tier prices nothing when nothing spills.
    pub fn read_time(&self, requests: u64, segment_bytes: usize) -> SimTime {
        if requests == 0 {
            return SimTime::ZERO;
        }
        let bytes = requests as f64 * segment_bytes as f64;
        let seeks = requests as f64 / self.queue_depth.max(1) as f64;
        SimTime::from_secs(seeks * self.seek_latency_s + bytes / self.read_bandwidth(segment_bytes))
    }
}

/// The assembled cost model for one machine node.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Interconnect description used for routing and bandwidth.
    pub topology: Topology,
    /// Base GPUDirect P2P dependent-load latency in seconds.
    ///
    /// Table I: 1.35 µs for an 8 GB distributed allocation.
    pub p2p_base_latency_s: f64,
    /// Additional P2P latency per doubling of the distributed allocation
    /// size beyond 8 GB (TLB/page-table reach effects).
    ///
    /// Table I: latency grows 1.35 → 1.56 µs from 8 → 128 GB, i.e.
    /// ≈ 0.0525 µs per doubling.
    pub p2p_latency_per_doubling_s: f64,
    /// Unified-memory fault service ceiling in seconds (large allocations).
    ///
    /// Table I: UM latency saturates near 35.8 µs at 128 GB.
    pub um_saturation_latency_s: f64,
    /// UM latency model: `sat - amplitude * exp(-doublings / decay)`.
    /// Fitted so 8 GB → 20.8 µs, 16 GB → ~29.6 µs (Table I).
    pub um_amplitude_s: f64,
    /// Decay constant (in doublings) of the UM latency fit.
    pub um_decay_doublings: f64,
    /// Local HBM dependent-load latency (~500 ns on A100; only matters for
    /// the fraction of pointer-chase hops that land on the local GPU).
    pub local_hbm_latency_s: f64,
    /// Host DRAM dependent-load latency (~100 ns).
    pub host_dram_latency_s: f64,
    /// Random-read efficiency knee in bytes: below this, achieved NVLink
    /// bandwidth is proportional to the segment size.
    ///
    /// Figure 8: "when the random read segment size is less than 64 bytes,
    /// the achieved bandwidth is almost proportional to the segment size".
    pub gather_knee_bytes: f64,
    /// BusBW achieved at the knee (Figure 8: ≈181 GB/s at 64 B).
    pub gather_knee_busbw: f64,
    /// Saturated BusBW for segments ≥ 128 B (Figure 8: ≈230 GB/s).
    pub gather_saturated_busbw: f64,
    /// PCIe link latency per transfer (DMA setup + traversal), seconds.
    pub pcie_latency_s: f64,
    /// InfiniBand end-to-end latency per message, seconds (~2 µs HDR).
    pub ib_latency_s: f64,
    /// NCCL collective call overhead, seconds per operation (ring setup,
    /// kernel launches on every rank).
    pub nccl_op_overhead_s: f64,
    /// Effective bandwidth when the host CPU performs a random gather out of
    /// its own DRAM (index-gather loop, all cores): far below streaming
    /// bandwidth because every row is a cache miss.
    pub host_gather_bandwidth: f64,
    /// Aggregate CPU neighbor-sampling rate for a DGL-0.7-class parallel
    /// C++ sampler, in sampled edges per second (all cores).
    ///
    /// Calibrated against Table V: DGL spends ~20 s of a ~26–31 s
    /// ogbn-products epoch in sampling ≈ 5.5e9 sampled edges → ~2.8e8/s.
    pub cpu_sample_edges_per_s: f64,
    /// PyG-2.0-class sampler rate (Python-loop and torch-op overhead makes
    /// it roughly an order of magnitude slower than DGL's C++ sampler —
    /// Table V shows PyG epochs 7–9× DGL's on ogbn-products).
    pub pyg_sample_edges_per_s: f64,
    /// Per-GPU sampling rate of WholeGraph's fused path-doubling sampler,
    /// sampled edges per second (§III-C1; calibrated so the sampling slice
    /// of Figure 9's WholeGraph bars is small but visible).
    pub gpu_sample_edges_per_s: f64,
    /// Per-GPU rate of the AppendUnique hash-table op, in inserted keys/s.
    pub gpu_unique_keys_per_s: f64,
    /// NVMe tier below the DSM: prices the out-of-core row fetches of
    /// `wg_mem::ooc` (seek + per-byte bandwidth knee).
    pub storage: StorageCostModel,
}

impl CostModel {
    /// Cost model for the paper's DGX-A100.
    pub fn dgx_a100() -> Self {
        Self::for_topology(Topology::dgx_a100())
    }

    /// Cost model with DGX-A100 constants over a custom topology.
    pub fn for_topology(topology: Topology) -> Self {
        CostModel {
            topology,
            p2p_base_latency_s: 1.35e-6,
            p2p_latency_per_doubling_s: 0.0525e-6,
            um_saturation_latency_s: 36.2e-6,
            um_amplitude_s: 15.4e-6,
            um_decay_doublings: 1.1,
            local_hbm_latency_s: 0.5e-6,
            host_dram_latency_s: 0.1e-6,
            gather_knee_bytes: 64.0,
            gather_knee_busbw: 181.0e9,
            gather_saturated_busbw: 230.0e9,
            pcie_latency_s: 10.0e-6,
            ib_latency_s: 2.0e-6,
            nccl_op_overhead_s: 20.0e-6,
            host_gather_bandwidth: 12.0e9,
            cpu_sample_edges_per_s: 2.8e8,
            pyg_sample_edges_per_s: 3.0e7,
            gpu_sample_edges_per_s: 3.0e9,
            gpu_unique_keys_per_s: 8.0e9,
            storage: StorageCostModel::nvme(),
        }
    }

    /// Reference allocation size for the latency-growth terms (Table I
    /// starts at 8 GB).
    const LATENCY_REF_BYTES: f64 = 8.0 * (1u64 << 30) as f64;

    /// Doublings of `bytes` beyond the 8 GB reference (clamped at 0).
    fn doublings(bytes: u64) -> f64 {
        ((bytes as f64) / Self::LATENCY_REF_BYTES).log2().max(0.0)
    }

    /// Dependent-load latency of one GPUDirect P2P access into a
    /// distributed shared allocation of `dsm_bytes` (Table I, right column).
    pub fn p2p_access_latency(&self, dsm_bytes: u64) -> SimTime {
        SimTime::from_secs(
            self.p2p_base_latency_s + self.p2p_latency_per_doubling_s * Self::doublings(dsm_bytes),
        )
    }

    /// Dependent-load latency of one Unified-Memory access (page fault +
    /// migration) into a distributed allocation of `dsm_bytes` (Table I,
    /// left column).
    pub fn um_access_latency(&self, dsm_bytes: u64) -> SimTime {
        let d = Self::doublings(dsm_bytes);
        SimTime::from_secs(
            self.um_saturation_latency_s
                - self.um_amplitude_s * (-d / self.um_decay_doublings).exp(),
        )
    }

    /// Latency of a remote access under the given [`AccessMode`].
    pub fn remote_access_latency(&self, mode: AccessMode, dsm_bytes: u64) -> SimTime {
        match mode {
            AccessMode::PeerAccess => self.p2p_access_latency(dsm_bytes),
            AccessMode::UnifiedMemory => self.um_access_latency(dsm_bytes),
        }
    }

    /// Achieved NVLink **BusBW** (bandwidth seen by the hardware bus) when a
    /// GPU performs random reads of `segment_bytes`-sized contiguous pieces
    /// from peer memory — the Figure 8 curve.
    pub fn gather_busbw(&self, segment_bytes: usize) -> f64 {
        let s = segment_bytes as f64;
        if s <= 0.0 {
            return 0.0;
        }
        if s < self.gather_knee_bytes {
            // Proportional regime: every transaction wastes the rest of a
            // knee-sized flit.
            self.gather_knee_busbw * s / self.gather_knee_bytes
        } else if s < 2.0 * self.gather_knee_bytes {
            // Linear climb from the knee (181 GB/s @64 B) to saturation
            // (230 GB/s @128 B).
            let t = (s - self.gather_knee_bytes) / self.gather_knee_bytes;
            self.gather_knee_busbw + t * (self.gather_saturated_busbw - self.gather_knee_busbw)
        } else {
            self.gather_saturated_busbw
        }
    }

    /// Achieved **AlgoBW** for a random gather: on an `n`-GPU node, 1/n of
    /// the gathered rows are local, so the bus only carries (n-1)/n of the
    /// bytes the algorithm sees (§IV-C1: AlgoBW = BusBW · 8/7 on 8 GPUs).
    pub fn gather_algobw(&self, segment_bytes: usize) -> f64 {
        let n = self.topology.num_gpus.max(1) as f64;
        self.gather_busbw(segment_bytes) * n / (n - 1.0).max(1.0)
    }

    /// Time for one GPU to gather `rows` random rows of `row_bytes` each
    /// from the distributed shared memory (the one-kernel global gather of
    /// §III-C3), including one kernel launch.
    pub fn dsm_gather_time(&self, rows: u64, row_bytes: usize, spec: &DeviceSpec) -> SimTime {
        let bytes = rows as f64 * row_bytes as f64;
        let bw = self.gather_algobw(row_bytes);
        SimTime::from_secs(spec.kernel_launch_overhead_s + bytes / bw)
    }

    /// Time for a GPU to gather `rows` random rows of `row_bytes` each out
    /// of its **own HBM** — the price of feature-cache hits. Random reads
    /// of small segments waste bandwidth on HBM exactly as they do on
    /// NVLink, so the same Figure-8 knee curve applies as an efficiency
    /// fraction of the device's peak memory bandwidth. No launch overhead:
    /// cache hits ride the same kernel as the surrounding DSM gather.
    pub fn hbm_gather_time(&self, rows: u64, row_bytes: usize, spec: &DeviceSpec) -> SimTime {
        if rows == 0 {
            return SimTime::ZERO;
        }
        let efficiency = self.gather_busbw(row_bytes) / self.gather_saturated_busbw;
        let bw = spec.memory_bandwidth * efficiency;
        SimTime::from_secs(rows as f64 * row_bytes as f64 / bw)
    }

    /// Time to stream `bytes` contiguously across a resolved [`Path`].
    pub fn transfer_time(&self, bytes: u64, path: Path) -> SimTime {
        let (lat, bw) = match path.link {
            LinkKind::Local => (0.0, f64::INFINITY),
            LinkKind::NvLink => (self.p2p_base_latency_s, self.topology.nvlink_bandwidth),
            LinkKind::Pcie => (self.pcie_latency_s, self.topology.pcie_bandwidth),
            LinkKind::InfiniBand => (self.ib_latency_s, self.topology.node_ib_bandwidth()),
        };
        let eff = bw * path.bandwidth_share;
        if eff.is_infinite() {
            SimTime::from_secs(lat)
        } else {
            SimTime::from_secs(lat + bytes as f64 / eff)
        }
    }

    /// Time for `flops` floating-point operations of the given class on a
    /// device, including `kernels` launch overheads.
    pub fn compute_time(
        &self,
        flops: f64,
        class: KernelClass,
        spec: &DeviceSpec,
        kernels: u32,
    ) -> SimTime {
        let rate = match class {
            KernelClass::Dense => spec.dense_flops(),
            KernelClass::Sparse => spec.sparse_flops(),
        };
        SimTime::from_secs(spec.kernel_launch_overhead_s * kernels as f64 + flops / rate)
    }

    /// Time to stream `bytes` through a device's local memory system
    /// (memory-bound kernels such as elementwise ops).
    pub fn memory_stream_time(&self, bytes: u64, spec: &DeviceSpec) -> SimTime {
        SimTime::from_secs(spec.kernel_launch_overhead_s + bytes as f64 / spec.memory_bandwidth)
    }

    /// Time for the host CPU to gather `rows` random feature rows of
    /// `row_bytes` from host DRAM (the DGL/PyG feature-collection step).
    pub fn host_gather_time(&self, rows: u64, row_bytes: usize) -> SimTime {
        let bytes = rows as f64 * row_bytes as f64;
        SimTime::from_secs(bytes / self.host_gather_bandwidth)
    }

    /// Time for a GPU kernel to gather `rows` random rows of `row_bytes`
    /// directly out of host-pinned memory over PCIe (the "directly
    /// accessing these sparse features of CPU from GPU" alternative of
    /// §I), with `concurrent` GPUs sharing the uplinks.
    ///
    /// Random reads achieve a fraction of the link's streaming bandwidth
    /// (read-request round trips, partial-cacheline transactions); we use
    /// a segment-size efficiency curve with the same knee shape as the
    /// NVLink one, scaled to PCIe's longer ~1.3 µs round trip.
    pub fn pcie_zero_copy_gather_time(
        &self,
        rows: u64,
        row_bytes: usize,
        concurrent: u32,
        spec: &DeviceSpec,
    ) -> SimTime {
        // Efficiency knee at 256 B: smaller rows waste a full TLP.
        const KNEE_BYTES: f64 = 256.0;
        const PEAK_EFFICIENCY: f64 = 0.75;
        let s = row_bytes as f64;
        let eff = PEAK_EFFICIENCY * (s / (s + KNEE_BYTES)).min(1.0);
        let share = self.topology.pcie_share(concurrent);
        let bw = self.topology.pcie_bandwidth * share * eff;
        let bytes = rows as f64 * row_bytes as f64;
        SimTime::from_secs(spec.kernel_launch_overhead_s + self.pcie_latency_s + bytes / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn p2p_latency_reproduces_table1() {
        let m = CostModel::dgx_a100();
        // Paper Table I (µs): 8 GB → 1.35, 16 → 1.37, 32 → 1.43,
        // 64 → 1.51, 128 → 1.56. Our linear-in-doublings fit must land
        // within 0.05 µs of each.
        let expect = [(8, 1.35), (16, 1.37), (32, 1.43), (64, 1.51), (128, 1.56)];
        for (gb, us) in expect {
            let got = m.p2p_access_latency(gb * GB).as_micros();
            assert!(
                (got - us).abs() < 0.05,
                "P2P latency at {gb} GB: model {got:.3} µs vs paper {us} µs"
            );
        }
    }

    #[test]
    fn um_latency_reproduces_table1() {
        let m = CostModel::dgx_a100();
        // Paper Table I (µs): 20.8, 29.6, 32.5, 35.3, 35.8.
        let expect = [(8, 20.8), (16, 29.6), (32, 32.5), (64, 35.3), (128, 35.8)];
        for (gb, us) in expect {
            let got = m.um_access_latency(gb * GB).as_micros();
            assert!(
                (got - us).abs() < 1.5,
                "UM latency at {gb} GB: model {got:.2} µs vs paper {us} µs"
            );
        }
    }

    #[test]
    fn um_is_an_order_of_magnitude_slower_than_p2p() {
        let m = CostModel::dgx_a100();
        for gb in [8u64, 16, 32, 64, 128] {
            let ratio = m.um_access_latency(gb * GB) / m.p2p_access_latency(gb * GB);
            assert!(ratio > 10.0, "UM/P2P ratio at {gb} GB = {ratio:.1}");
        }
    }

    #[test]
    fn gather_busbw_reproduces_figure8() {
        let m = CostModel::dgx_a100();
        // Proportional regime below 64 B.
        let b4 = m.gather_busbw(4);
        let b32 = m.gather_busbw(32);
        assert!((b32 / b4 - 8.0).abs() < 0.01, "proportionality below knee");
        // ≈181 GB/s at 64 B.
        assert!((m.gather_busbw(64) - 181.0e9).abs() < 1e9);
        // ≈230 GB/s from 128 B on, and flat after.
        assert!((m.gather_busbw(128) - 230.0e9).abs() < 1e9);
        assert_eq!(m.gather_busbw(128), m.gather_busbw(4096));
        // Never exceeds the NVLink theoretical 300 GB/s.
        assert!(m.gather_busbw(4096) < 300.0e9);
    }

    #[test]
    fn algobw_is_8_over_7_of_busbw() {
        let m = CostModel::dgx_a100();
        let ratio = m.gather_algobw(512) / m.gather_busbw(512);
        assert!((ratio - 8.0 / 7.0).abs() < 1e-12);
        // §IV-C1: max AlgoBW = 300 / (7/8) ≈ 343 GB/s; saturated model
        // value must stay below that.
        assert!(m.gather_algobw(4096) < 343.0e9);
    }

    #[test]
    fn transfer_time_orders_links_correctly() {
        let m = CostModel::dgx_a100();
        let t = &m.topology;
        let bytes = GB;
        let nv = m.transfer_time(
            bytes,
            Path {
                link: LinkKind::NvLink,
                bandwidth_share: 1.0,
            },
        );
        let pcie = m.transfer_time(
            bytes,
            Path {
                link: LinkKind::Pcie,
                bandwidth_share: 0.5,
            },
        );
        let local = m.transfer_time(
            bytes,
            Path {
                link: LinkKind::Local,
                bandwidth_share: 1.0,
            },
        );
        assert!(local < nv && nv < pcie);
        // 1 GiB at 16 GB/s effective PCIe ≈ 67 ms.
        assert!((pcie.as_millis() - (bytes as f64 / (0.5 * t.pcie_bandwidth)) * 1e3).abs() < 1.0);
    }

    #[test]
    fn theoretical_nvlink_vs_pcie_speedup_matches_paper() {
        // §III-B: "WholeGraph has a theoretical speedup of 18.75X" —
        // 300 GB/s NVLink vs 16 GB/s per-GPU shared PCIe.
        let m = CostModel::dgx_a100();
        let shared = m.topology.pcie_bandwidth * m.topology.pcie_share(8);
        let speedup = m.topology.nvlink_bandwidth / shared;
        assert!((speedup - 18.75).abs() < 1e-9);
    }

    #[test]
    fn compute_time_scales_with_class() {
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let dense = m.compute_time(1e12, KernelClass::Dense, &spec, 1);
        let sparse = m.compute_time(1e12, KernelClass::Sparse, &spec, 1);
        assert!(sparse > dense);
        // One empty kernel costs exactly the launch overhead.
        let empty = m.compute_time(0.0, KernelClass::Dense, &spec, 3);
        assert!((empty.as_micros() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn zero_copy_gather_sits_between_p2p_and_um() {
        // The §I design space: host zero-copy over PCIe is far slower than
        // the NVLink DSM gather but nowhere near UM's fault storm.
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let rows = 500_000u64;
        let row_bytes = 512usize;
        let p2p = m.dsm_gather_time(rows, row_bytes, &spec);
        let zc = m.pcie_zero_copy_gather_time(rows, row_bytes, 8, &spec);
        assert!(zc > p2p * 5.0, "zero-copy {zc} vs p2p {p2p}");
        // Effective rate bounded by the shared PCIe uplink.
        let rate = (rows * row_bytes as u64) as f64 / zc.as_secs();
        assert!(
            rate < 16.0e9,
            "zero-copy rate {rate:.2e} exceeds shared PCIe"
        );
        assert!(rate > 4.0e9, "zero-copy rate {rate:.2e} implausibly low");
    }

    #[test]
    fn zero_copy_efficiency_improves_with_row_width() {
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let narrow = m.pcie_zero_copy_gather_time(1_000_000, 64, 8, &spec);
        let wide = m.pcie_zero_copy_gather_time(125_000, 512, 8, &spec);
        // Same byte volume; wide rows waste fewer TLPs.
        assert!(wide < narrow, "wide {wide} !< narrow {narrow}");
    }

    #[test]
    fn hbm_hits_are_much_cheaper_than_dsm_gathers() {
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        // papers100M-width rows: HBM peak (1555 GB/s) vs saturated AlgoBW
        // (~263 GB/s) is ~6x; with launch overhead the gap only widens.
        let hbm = m.hbm_gather_time(1_000_000, 512, &spec);
        let dsm = m.dsm_gather_time(1_000_000, 512, &spec);
        assert!(dsm / hbm > 5.0, "dsm {dsm} vs hbm {hbm}");
        // No launch overhead and no cost at zero rows (the cached gather
        // adds this term unconditionally).
        assert_eq!(m.hbm_gather_time(0, 512, &spec), SimTime::ZERO);
        // The knee shape applies: byte-equal volumes of narrow rows are
        // strictly slower than wide ones.
        let narrow = m.hbm_gather_time(8_000_000, 16, &spec);
        let wide = m.hbm_gather_time(1_000_000, 128, &spec);
        assert!(narrow > wide, "narrow {narrow} !> wide {wide}");
    }

    #[test]
    fn storage_bandwidth_has_a_page_knee() {
        let s = StorageCostModel::nvme();
        // Proportional regime below one flash page: byte-equal volumes of
        // sub-page reads transfer whole pages, so bandwidth scales with
        // the segment size.
        let b64 = s.read_bandwidth(64);
        let b512 = s.read_bandwidth(512);
        assert!(
            (b512 / b64 - 8.0).abs() < 0.01,
            "proportionality below knee"
        );
        // One page per request achieves the knee bandwidth.
        assert!((s.read_bandwidth(4096) - 6.0e9).abs() < 1e6);
        // Saturated from two pages on, and flat after.
        assert_eq!(s.read_bandwidth(8192), s.read_bandwidth(1 << 20));
        assert!((s.read_bandwidth(8192) - 6.8e9).abs() < 1e6);
    }

    #[test]
    fn storage_seeks_amortize_over_queue_depth() {
        let s = StorageCostModel::nvme();
        // 32 requests (one full queue) of 400 B pay one seek's worth of
        // latency between them, not 32.
        let t = s.read_time(32, 400);
        let seek_share = s.seek_latency_s;
        assert!(t.as_secs() > seek_share, "seek term missing: {t}");
        assert!(
            t.as_secs() < 2.0 * seek_share + 32.0 * 400.0 / s.read_bandwidth(400),
            "seeks not amortized: {t}"
        );
        // Zero requests price zero — a fully-resident run must not pay
        // any storage time.
        assert_eq!(s.read_time(0, 400), SimTime::ZERO);
    }

    #[test]
    fn storage_reads_are_much_slower_than_dsm_gathers() {
        // The tier ordering the whole OOC design rests on: cache (HBM)
        // < DSM (NVLink) << disk (NVMe), at feature-row granularity.
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        let rows = 100_000u64;
        let row_bytes = 400usize; // 100 f32 features
        let hbm = m.hbm_gather_time(rows, row_bytes, &spec);
        let dsm = m.dsm_gather_time(rows, row_bytes, &spec);
        let disk = m.storage.read_time(rows, row_bytes);
        assert!(hbm < dsm, "hbm {hbm} !< dsm {dsm}");
        assert!(disk / dsm > 10.0, "disk {disk} vs dsm {dsm}");
    }

    #[test]
    fn dsm_gather_saturates_for_wide_rows() {
        let m = CostModel::dgx_a100();
        let spec = DeviceSpec::a100_40gb();
        // 1M rows of 512 B (papers100M feature rows) — should achieve close
        // to saturated AlgoBW.
        let rows = 1_000_000u64;
        let t = m.dsm_gather_time(rows, 512, &spec);
        let achieved = (rows * 512) as f64 / t.as_secs();
        assert!(achieved > 0.9 * m.gather_algobw(512));
    }
}
