//! Simulated time.
//!
//! All durations in the simulator are carried as [`SimTime`], a thin wrapper
//! around `f64` seconds. Using a newtype (instead of a bare `f64`) keeps
//! bandwidth (`bytes / SimTime`) and latency arithmetic honest across crate
//! boundaries and gives us uniform pretty-printing for the experiment
//! harnesses (`1.35us`, `6.0s`, ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time (or an instant on a device clock), in seconds.
///
/// `SimTime` is totally ordered and supports the arithmetic a cost model
/// needs. Negative values are representable (differences) but the
/// constructors used by cost models only produce non-negative spans.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero instant / empty span.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        SimTime(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        SimTime(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        SimTime(ns * 1e-9)
    }

    /// The span as fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span as fractional milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The span as fractional microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The span as fractional nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Element-wise maximum — used when parallel branches join (a barrier
    /// completes when the slowest participant does).
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// True if the span is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    /// Ratio of two spans (e.g. speedup computations).
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Human-readable with an auto-selected unit: `1.350us`, `23.40ms`, `6.00s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s == 0.0 {
            write!(f, "0s")
        } else if s < 1e-6 {
            write!(f, "{:.2}ns", self.0 * 1e9)
        } else if s < 1e-3 {
            write!(f, "{:.3}us", self.0 * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

/// Compute a bandwidth in GB/s given a byte volume and the simulated span it
/// took to move it. Returns 0 for a zero span.
pub fn bandwidth_gbps(bytes: u64, elapsed: SimTime) -> f64 {
    if elapsed.is_zero() {
        0.0
    } else {
        bytes as f64 / elapsed.as_secs() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrips() {
        let t = SimTime::from_micros(1.35);
        assert!((t.as_nanos() - 1350.0).abs() < 1e-9);
        assert!((t.as_secs() - 1.35e-6).abs() < 1e-18);
        assert!((SimTime::from_millis(2.0).as_secs() - 0.002).abs() < 1e-15);
        assert!((SimTime::from_nanos(500.0).as_micros() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(0.25);
        assert_eq!((a + b).as_secs(), 1.25);
        assert_eq!((a - b).as_secs(), 0.75);
        assert_eq!((a * 4.0).as_secs(), 4.0);
        assert_eq!((a / 4.0).as_secs(), 0.25);
        assert_eq!(a / b, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 1.25);
        c -= b;
        assert_eq!(c.as_secs(), 1.0);
    }

    #[test]
    fn max_min_and_sum() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimTime = [a, b, a].into_iter().sum();
        assert_eq!(total.as_secs(), 4.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::ZERO), "0s");
        assert_eq!(format!("{}", SimTime::from_nanos(12.0)), "12.00ns");
        assert_eq!(format!("{}", SimTime::from_micros(1.35)), "1.350us");
        assert_eq!(format!("{}", SimTime::from_millis(23.4)), "23.400ms");
        assert_eq!(format!("{}", SimTime::from_secs(6.0)), "6.000s");
    }

    #[test]
    fn bandwidth_helper() {
        // 300 GB moved in one second is 300 GB/s.
        let bw = bandwidth_gbps(300_000_000_000, SimTime::from_secs(1.0));
        assert!((bw - 300.0).abs() < 1e-9);
        assert_eq!(bandwidth_gbps(100, SimTime::ZERO), 0.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1.0) < SimTime::from_millis(1.0));
        assert!(SimTime::from_secs(1.0) > SimTime::from_millis(999.0));
    }
}
