//! # wg-sim — simulated multi-GPU machine substrate
//!
//! WholeGraph (SC '22) runs on a DGX-A100: 8 NVIDIA A100 GPUs joined by
//! NVSwitch (300 GB/s unidirectional NVLink per GPU), pairs of GPUs sharing a
//! PCIe 4.0 x16 uplink with two InfiniBand NICs, and two 64-core AMD Rome
//! CPUs. This crate reproduces that machine in software so the rest of the
//! workspace can execute the paper's algorithms *for real* (real bytes moved
//! between per-device memory regions, real sampling, real training math)
//! while charging **simulated device time** from calibrated cost models.
//!
//! The crate provides:
//!
//! * [`device`] — device identities and hardware specifications,
//! * [`topology`] — the interconnect graph (NVLink/NVSwitch, PCIe, IB, host
//!   memory) and path resolution between endpoints,
//! * [`time`] — the simulated time type,
//! * [`cost`] — calibrated latency/bandwidth/compute cost models (every
//!   constant cites the paper table or figure it is fitted against),
//! * [`clock`] — per-device virtual clocks,
//! * [`stream`] — CUDA-stream-like execution timelines and events layered
//!   on the clocks (the substrate for sample/gather/train overlap),
//! * [`memory`] — per-device memory capacity accounting (Table IV),
//! * [`trace`] — busy/idle utilization traces (Figure 12),
//! * [`collective`] — cost models for AllGather / AllReduce / AlltoAllV,
//! * [`machine`] — the assembled [`machine::Machine`] and multi-node
//!   [`machine::Cluster`].
//!
//! Nothing here depends on CUDA; a "kernel" elsewhere in the workspace is a
//! rayon parallel loop whose simulated duration is computed by these models.

pub mod clock;
pub mod collective;
pub mod cost;
pub mod device;
pub mod machine;
pub mod memory;
pub mod stream;
pub mod time;
pub mod topology;
pub mod trace;

pub use clock::DeviceClock;
pub use cost::CostModel;
pub use device::{DeviceId, DeviceKind, DeviceSpec};
pub use machine::{cluster_barrier, Cluster, Machine, MachineConfig};
pub use memory::{MemoryAccounting, MemoryPool};
pub use stream::{Event, Stream};
pub use time::SimTime;
pub use topology::{LinkKind, Path, Topology};
pub use trace::{Phase, TraceEvent, UtilizationTrace};
