//! Busy/idle utilization traces.
//!
//! Figure 12 of the paper plots GPU utilization over wall-clock time for
//! PyG, DGL and WholeGraph: the host-memory frameworks oscillate between 0%
//! (GPU starving while the CPU samples/gathers) and bursts of activity,
//! while WholeGraph stays ≥95% busy. We reproduce this by recording, per
//! device, the simulated interval every pipeline phase occupies, tagged
//! with whether the *device under measurement* was busy or idle-waiting.

use crate::device::DeviceId;
use crate::time::SimTime;

/// Pipeline phase labels (also the legend of Figures 9 and 11).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Phase {
    /// One-time setup (memory allocation, IPC exchange, data load).
    Setup,
    /// Neighbor sampling + sub-graph construction.
    Sampling,
    /// Feature gathering (and, for host pipelines, the PCIe copy-in).
    Gather,
    /// Forward/backward/optimizer on the GPU.
    Training,
    /// Gradient AllReduce / other collective communication.
    Communication,
    /// The device is waiting on another device's work.
    Idle,
}

impl Phase {
    /// Whether a GPU doing this phase counts as "utilized" for Figure 12.
    /// Host-side sampling/gather leave the GPU idle; GPU-side versions of
    /// the same phases are recorded by the pipelines as busy GPU intervals.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Sampling => "sampling",
            Phase::Gather => "gather",
            Phase::Training => "training",
            Phase::Communication => "comm",
            Phase::Idle => "idle",
        }
    }
}

/// One recorded interval on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Device the interval belongs to.
    pub device: DeviceId,
    /// Interval start (simulated).
    pub start: SimTime,
    /// Interval end (simulated).
    pub end: SimTime,
    /// What the device was doing.
    pub phase: Phase,
    /// Whether the device was actively computing during the interval
    /// (`false` = stalled waiting for data — the utilization dips of
    /// Figure 12).
    pub busy: bool,
}

impl TraceEvent {
    /// Length of the interval.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// An append-only utilization trace for one device.
#[derive(Clone, Debug, Default)]
pub struct UtilizationTrace {
    events: Vec<TraceEvent>,
}

impl UtilizationTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval. Intervals must be well-formed (`end >= start`).
    pub fn record(&mut self, ev: TraceEvent) {
        assert!(
            ev.end >= ev.start,
            "trace interval ends before it starts: {ev:?}"
        );
        self.events.push(ev);
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total busy time in `[from, to)`.
    ///
    /// Busy intervals are **unioned**, not summed: stream-scheduled
    /// executors record overlapping busy spans on the same device (e.g.
    /// gather on the input stream while training runs on the compute
    /// stream), and a device that is doing two things at once is still
    /// only busy once. For non-overlapping traces (everything the serial
    /// executor records) union and sum agree exactly.
    pub fn busy_time(&self, from: SimTime, to: SimTime) -> SimTime {
        let mut spans: Vec<(SimTime, SimTime)> = self
            .events
            .iter()
            .filter(|e| e.busy)
            .map(|e| (e.start.max(from), e.end.min(to)))
            .filter(|(s, e)| e > s)
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-finite trace time"));
        let mut total = SimTime::ZERO;
        let mut current: Option<(SimTime, SimTime)> = None;
        for (s, e) in spans {
            match current {
                Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    current = Some((s, e));
                }
                None => current = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }

    /// Utilization ratio (busy / span) over `[from, to)`.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to - from;
        if span.as_secs() <= 0.0 {
            return 0.0;
        }
        self.busy_time(from, to) / span
    }

    /// Utilization sampled over `bins` equal windows spanning the whole
    /// trace — the Figure 12 time series for one device.
    pub fn utilization_series(&self, bins: usize) -> Vec<(SimTime, f64)> {
        let end = self
            .events
            .iter()
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max);
        if bins == 0 || end.is_zero() {
            return Vec::new();
        }
        let w = end / bins as f64;
        (0..bins)
            .map(|i| {
                let from = w * i as f64;
                let to = w * (i + 1) as f64;
                (from, self.utilization(from, to))
            })
            .collect()
    }

    /// Total time attributed to each phase (busy or not) — Figures 9/11
    /// breakdowns.
    pub fn phase_total(&self, phase: Phase) -> SimTime {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.duration())
            .sum()
    }

    /// Render the trace as CSV (`start_s,end_s,phase,busy`), for plotting
    /// Figure 12 outside the ASCII harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_s,end_s,phase,busy\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:.9},{:.9},{},{}\n",
                e.start.as_secs(),
                e.end.as_secs(),
                e.phase.name(),
                u8::from(e.busy)
            ));
        }
        out
    }

    /// Render the binned utilization series as CSV (`t_s,utilization`).
    pub fn utilization_csv(&self, bins: usize) -> String {
        let mut out = String::from("t_s,utilization\n");
        for (t, u) in self.utilization_series(bins) {
            out.push_str(&format!("{:.9},{u:.4}\n", t.as_secs()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, end: f64, phase: Phase, busy: bool) -> TraceEvent {
        TraceEvent {
            device: DeviceId::Gpu(0),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            phase,
            busy,
        }
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Idle, false));
        t.record(ev(1.0, 3.0, Phase::Training, true));
        t.record(ev(3.0, 4.0, Phase::Idle, false));
        let u = t.utilization(SimTime::ZERO, SimTime::from_secs(4.0));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(
            t.busy_time(SimTime::ZERO, SimTime::from_secs(4.0))
                .as_secs(),
            2.0
        );
    }

    #[test]
    fn overlapping_busy_intervals_count_once() {
        // Two streams of the same device busy over the same wall-clock
        // span must not push utilization past 100%.
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 3.0, Phase::Training, true));
        t.record(ev(1.0, 4.0, Phase::Gather, true));
        t.record(ev(6.0, 7.0, Phase::Sampling, true));
        let busy = t.busy_time(SimTime::ZERO, SimTime::from_secs(8.0));
        assert!((busy.as_secs() - 5.0).abs() < 1e-12, "busy {busy}");
        let u = t.utilization(SimTime::ZERO, SimTime::from_secs(4.0));
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 10.0, Phase::Training, true));
        let u = t.utilization(SimTime::from_secs(2.0), SimTime::from_secs(4.0));
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_has_requested_bins() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 2.0, Phase::Training, true));
        t.record(ev(2.0, 4.0, Phase::Idle, false));
        let s = t.utilization_series(4);
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!((s[3].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn phase_totals() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.5, Phase::Sampling, false));
        t.record(ev(1.5, 2.0, Phase::Gather, false));
        t.record(ev(2.0, 3.0, Phase::Training, true));
        t.record(ev(3.0, 4.5, Phase::Sampling, false));
        assert_eq!(t.phase_total(Phase::Sampling).as_secs(), 3.0);
        assert_eq!(t.phase_total(Phase::Gather).as_secs(), 0.5);
        assert_eq!(t.phase_total(Phase::Training).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn malformed_interval_panics() {
        let mut t = UtilizationTrace::new();
        t.record(ev(2.0, 1.0, Phase::Idle, false));
    }

    #[test]
    fn empty_trace_series_is_empty() {
        let t = UtilizationTrace::new();
        assert!(t.utilization_series(10).is_empty());
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Sampling, false));
        t.record(ev(1.0, 2.0, Phase::Training, true));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "start_s,end_s,phase,busy");
        assert!(lines[1].ends_with(",sampling,0"));
        assert!(lines[2].ends_with(",training,1"));
        let ucsv = t.utilization_csv(4);
        assert_eq!(ucsv.trim().lines().count(), 5);
        assert!(ucsv.starts_with("t_s,utilization"));
    }
}
