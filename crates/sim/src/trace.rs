//! Busy/idle utilization traces.
//!
//! Figure 12 of the paper plots GPU utilization over wall-clock time for
//! PyG, DGL and WholeGraph: the host-memory frameworks oscillate between 0%
//! (GPU starving while the CPU samples/gathers) and bursts of activity,
//! while WholeGraph stays ≥95% busy. We reproduce this by recording, per
//! device, the simulated interval every pipeline phase occupies, tagged
//! with whether the *device under measurement* was busy or idle-waiting.

use crate::device::DeviceId;
use crate::time::SimTime;

/// Pipeline phase labels (also the legend of Figures 9 and 11).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Phase {
    /// One-time setup (memory allocation, IPC exchange, data load).
    Setup,
    /// Neighbor sampling + sub-graph construction.
    Sampling,
    /// Feature gathering (and, for host pipelines, the PCIe copy-in).
    Gather,
    /// Forward/backward/optimizer on the GPU.
    Training,
    /// Gradient AllReduce / other collective communication.
    Communication,
    /// The device is waiting on another device's work.
    Idle,
}

impl Phase {
    /// Every phase, in pipeline order (Setup first, Idle last).
    pub const ALL: [Phase; 6] = [
        Phase::Setup,
        Phase::Sampling,
        Phase::Gather,
        Phase::Training,
        Phase::Communication,
        Phase::Idle,
    ];

    /// Whether a GPU doing this phase counts as "utilized" for Figure 12.
    /// Host-side sampling/gather leave the GPU idle; GPU-side versions of
    /// the same phases are recorded by the pipelines as busy GPU intervals.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Sampling => "sampling",
            Phase::Gather => "gather",
            Phase::Training => "training",
            Phase::Communication => "comm",
            Phase::Idle => "idle",
        }
    }

    /// The `wg-trace` counter this phase's simulated busy time accrues
    /// under (seconds).
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::Setup => "sim.phase.setup_s",
            Phase::Sampling => "sim.phase.sampling_s",
            Phase::Gather => "sim.phase.gather_s",
            Phase::Training => "sim.phase.training_s",
            Phase::Communication => "sim.phase.comm_s",
            Phase::Idle => "sim.phase.idle_s",
        }
    }
}

/// One recorded interval on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Device the interval belongs to.
    pub device: DeviceId,
    /// Interval start (simulated).
    pub start: SimTime,
    /// Interval end (simulated).
    pub end: SimTime,
    /// What the device was doing.
    pub phase: Phase,
    /// Whether the device was actively computing during the interval
    /// (`false` = stalled waiting for data — the utilization dips of
    /// Figure 12).
    pub busy: bool,
}

impl TraceEvent {
    /// Length of the interval.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// An append-only utilization trace for one device.
#[derive(Clone, Debug, Default)]
pub struct UtilizationTrace {
    events: Vec<TraceEvent>,
}

impl UtilizationTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval. Intervals must be well-formed (`end >= start`).
    ///
    /// This is the chokepoint every simulated interval passes through
    /// ([`crate::Machine::run`] and stream-span recording both land
    /// here), so it also accrues the interval into the per-phase
    /// `sim.phase.*_s` counters when `wg-trace` metrics are enabled —
    /// one atomic-load probe otherwise.
    pub fn record(&mut self, ev: TraceEvent) {
        assert!(
            ev.end >= ev.start,
            "trace interval ends before it starts: {ev:?}"
        );
        wg_trace::counter!(ev.phase.metric_name(), ev.duration().as_secs());
        self.events.push(ev);
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total busy time in `[from, to)`.
    ///
    /// Busy intervals are **unioned**, not summed: stream-scheduled
    /// executors record overlapping busy spans on the same device (e.g.
    /// gather on the input stream while training runs on the compute
    /// stream), and a device that is doing two things at once is still
    /// only busy once. For non-overlapping traces (everything the serial
    /// executor records) union and sum agree exactly.
    pub fn busy_time(&self, from: SimTime, to: SimTime) -> SimTime {
        let mut spans: Vec<(SimTime, SimTime)> = self
            .events
            .iter()
            .filter(|e| e.busy)
            .map(|e| (e.start.max(from), e.end.min(to)))
            .filter(|(s, e)| e > s)
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-finite trace time"));
        let mut total = SimTime::ZERO;
        let mut current: Option<(SimTime, SimTime)> = None;
        for (s, e) in spans {
            match current {
                Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    current = Some((s, e));
                }
                None => current = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }

    /// Utilization ratio (busy / span) over `[from, to)`.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to - from;
        if span.as_secs() <= 0.0 {
            return 0.0;
        }
        self.busy_time(from, to) / span
    }

    /// Utilization sampled over `bins` equal windows spanning the whole
    /// trace — the Figure 12 time series for one device.
    pub fn utilization_series(&self, bins: usize) -> Vec<(SimTime, f64)> {
        let end = self
            .events
            .iter()
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max);
        if bins == 0 || end.is_zero() {
            return Vec::new();
        }
        let w = end / bins as f64;
        (0..bins)
            .map(|i| {
                let from = w * i as f64;
                let to = w * (i + 1) as f64;
                (from, self.utilization(from, to))
            })
            .collect()
    }

    /// Total time attributed to each phase (busy or not) — Figures 9/11
    /// breakdowns.
    pub fn phase_total(&self, phase: Phase) -> SimTime {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.duration())
            .sum()
    }

    /// Render the trace as CSV (`start_s,end_s,phase,busy`), for plotting
    /// Figure 12 outside the ASCII harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_s,end_s,phase,busy\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:.9},{:.9},{},{}\n",
                e.start.as_secs(),
                e.end.as_secs(),
                e.phase.name(),
                u8::from(e.busy)
            ));
        }
        out
    }

    /// Append this device's intervals to a Chrome trace as one `(pid,
    /// tid)` track, labeled `label`. Timestamps are **simulated** time
    /// mapped to trace microseconds; `busy` is carried as an event arg
    /// so Perfetto can color/filter the starvation dips of Figure 12.
    /// `Idle` intervals are emitted too — they are the dips.
    pub fn chrome_events(&self, out: &mut wg_trace::chrome::ChromeTrace, pid: u32, tid: u32) {
        for e in &self.events {
            out.complete(
                pid,
                tid,
                e.phase.name(),
                "sim",
                e.start.as_micros(),
                e.duration().as_micros(),
                &format!("\"busy\":{}", e.busy),
            );
        }
    }

    /// Render the binned utilization series as CSV (`t_s,utilization`).
    pub fn utilization_csv(&self, bins: usize) -> String {
        let mut out = String::from("t_s,utilization\n");
        for (t, u) in self.utilization_series(bins) {
            out.push_str(&format!("{:.9},{u:.4}\n", t.as_secs()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, end: f64, phase: Phase, busy: bool) -> TraceEvent {
        TraceEvent {
            device: DeviceId::Gpu(0),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            phase,
            busy,
        }
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Idle, false));
        t.record(ev(1.0, 3.0, Phase::Training, true));
        t.record(ev(3.0, 4.0, Phase::Idle, false));
        let u = t.utilization(SimTime::ZERO, SimTime::from_secs(4.0));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(
            t.busy_time(SimTime::ZERO, SimTime::from_secs(4.0))
                .as_secs(),
            2.0
        );
    }

    #[test]
    fn overlapping_busy_intervals_count_once() {
        // Two streams of the same device busy over the same wall-clock
        // span must not push utilization past 100%.
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 3.0, Phase::Training, true));
        t.record(ev(1.0, 4.0, Phase::Gather, true));
        t.record(ev(6.0, 7.0, Phase::Sampling, true));
        let busy = t.busy_time(SimTime::ZERO, SimTime::from_secs(8.0));
        assert!((busy.as_secs() - 5.0).abs() < 1e-12, "busy {busy}");
        let u = t.utilization(SimTime::ZERO, SimTime::from_secs(4.0));
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 10.0, Phase::Training, true));
        let u = t.utilization(SimTime::from_secs(2.0), SimTime::from_secs(4.0));
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_has_requested_bins() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 2.0, Phase::Training, true));
        t.record(ev(2.0, 4.0, Phase::Idle, false));
        let s = t.utilization_series(4);
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!((s[3].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn phase_totals() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.5, Phase::Sampling, false));
        t.record(ev(1.5, 2.0, Phase::Gather, false));
        t.record(ev(2.0, 3.0, Phase::Training, true));
        t.record(ev(3.0, 4.5, Phase::Sampling, false));
        assert_eq!(t.phase_total(Phase::Sampling).as_secs(), 3.0);
        assert_eq!(t.phase_total(Phase::Gather).as_secs(), 0.5);
        assert_eq!(t.phase_total(Phase::Training).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn malformed_interval_panics() {
        let mut t = UtilizationTrace::new();
        t.record(ev(2.0, 1.0, Phase::Idle, false));
    }

    #[test]
    fn empty_trace_series_is_empty() {
        let t = UtilizationTrace::new();
        assert!(t.utilization_series(10).is_empty());
    }

    #[test]
    fn phase_all_is_exhaustive_with_distinct_labels() {
        assert_eq!(Phase::ALL.len(), 6);
        for (i, a) in Phase::ALL.iter().enumerate() {
            assert!(a.metric_name().starts_with("sim.phase."));
            assert!(a.metric_name().ends_with("_s"));
            for b in &Phase::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.name(), b.name());
                assert_ne!(a.metric_name(), b.metric_name());
            }
        }
    }

    #[test]
    fn touching_busy_intervals_merge_without_double_count() {
        // end == next start: one contiguous busy run, not two plus a gap.
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Sampling, true));
        t.record(ev(1.0, 2.0, Phase::Gather, true));
        t.record(ev(2.0, 2.0, Phase::Training, true)); // zero-length
        let busy = t.busy_time(SimTime::ZERO, SimTime::from_secs(3.0));
        assert!((busy.as_secs() - 2.0).abs() < 1e-12, "busy {busy}");
        // A window that excludes every interval sees zero busy time.
        assert_eq!(
            t.busy_time(SimTime::from_secs(2.5), SimTime::from_secs(3.0))
                .as_secs(),
            0.0
        );
        // An inverted/empty window has zero utilization, not NaN.
        assert_eq!(t.utilization(SimTime::from_secs(1.0), SimTime::ZERO), 0.0);
    }

    #[test]
    fn busy_tag_not_phase_decides_occupancy() {
        // Phase labels say what ran; only the busy flag says whether the
        // device under measurement was utilized (host-side sampling is
        // recorded as Sampling/busy=false — a Figure 12 dip).
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Sampling, false));
        t.record(ev(1.0, 2.0, Phase::Sampling, true));
        assert_eq!(t.phase_total(Phase::Sampling).as_secs(), 2.0);
        assert_eq!(
            t.busy_time(SimTime::ZERO, SimTime::from_secs(2.0))
                .as_secs(),
            1.0
        );
    }

    #[test]
    fn chrome_events_map_intervals_to_complete_events() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 0.5, Phase::Gather, true));
        t.record(ev(0.5, 1.0, Phase::Idle, false));
        let mut chrome = wg_trace::chrome::ChromeTrace::new();
        t.chrome_events(&mut chrome, 7, 3);
        let json = chrome.finish();
        // Both intervals (idle dips included) as complete events on the
        // requested track, timestamps in simulated microseconds.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"pid\":7"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"name\":\"gather\""));
        assert!(json.contains("\"name\":\"idle\""));
        assert!(json.contains("\"dur\":500000.000"));
        assert!(json.contains("\"busy\":false"));
    }

    #[test]
    fn record_accrues_per_phase_metric_counters() {
        wg_trace::enable_metrics();
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 2.0, Phase::Communication, true));
        t.record(ev(2.0, 3.5, Phase::Communication, true));
        wg_trace::disable_all();
        let snap = wg_trace::metrics::snapshot();
        let comm = snap
            .counters
            .iter()
            .find(|(n, _)| n == Phase::Communication.metric_name())
            .expect("comm counter interned");
        // Other concurrently-running tests may also record comm intervals
        // (the registry is process-global), so lower-bound the total.
        assert!(comm.1 >= 3.5 - 1e-12, "comm seconds {}", comm.1);
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let mut t = UtilizationTrace::new();
        t.record(ev(0.0, 1.0, Phase::Sampling, false));
        t.record(ev(1.0, 2.0, Phase::Training, true));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "start_s,end_s,phase,busy");
        assert!(lines[1].ends_with(",sampling,0"));
        assert!(lines[2].ends_with(",training,1"));
        let ucsv = t.utilization_csv(4);
        assert_eq!(ucsv.trim().lines().count(), 5);
        assert!(ucsv.starts_with("t_s,utilization"));
    }
}
