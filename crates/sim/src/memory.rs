//! Per-device memory capacity accounting.
//!
//! Table IV of the paper reports WholeGraph's per-GPU memory consumption by
//! phase (graph structure / node features / training state). To regenerate
//! it we track every simulated device allocation against the device's
//! capacity, tagged with the phase that made it.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

use crate::device::DeviceId;

/// What an allocation is for — the row labels of Table IV.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllocKind {
    /// Adjacency (CSR offsets + edge lists).
    GraphStructure,
    /// Node or edge feature storage.
    Features,
    /// Model parameters, activations, gradients, optimizer state.
    Training,
    /// Scratch buffers (sampling outputs, hash tables, gather staging).
    Scratch,
}

impl fmt::Display for AllocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AllocKind::GraphStructure => "graph structure",
            AllocKind::Features => "node feature",
            AllocKind::Training => "training",
            AllocKind::Scratch => "scratch",
        };
        f.write_str(s)
    }
}

/// Error returned when an allocation would exceed device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Device that ran out.
    pub device: DeviceId,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory on {}: requested {} bytes, {} available",
            self.device, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Byte accounting for a single device.
#[derive(Clone, Debug)]
pub struct MemoryPool {
    device: DeviceId,
    capacity: u64,
    used: u64,
    by_kind: HashMap<AllocKind, u64>,
    peak: u64,
}

impl MemoryPool {
    /// A pool for `device` with the given capacity in bytes.
    pub fn new(device: DeviceId, capacity: u64) -> Self {
        MemoryPool {
            device,
            capacity,
            used: 0,
            by_kind: HashMap::new(),
            peak: 0,
        }
    }

    /// Record an allocation; fails if it would exceed capacity.
    pub fn alloc(&mut self, kind: AllocKind, bytes: u64) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory {
                device: self.device,
                requested: bytes,
                available,
            });
        }
        self.used += bytes;
        *self.by_kind.entry(kind).or_insert(0) += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Record a free. Panics if more is freed than was allocated for the
    /// kind — that is always a bookkeeping bug in the caller.
    pub fn free(&mut self, kind: AllocKind, bytes: u64) {
        let slot = self
            .by_kind
            .get_mut(&kind)
            .unwrap_or_else(|| panic!("freeing {bytes} bytes of {kind} never allocated"));
        assert!(*slot >= bytes, "freeing more {kind} bytes than allocated");
        *slot -= bytes;
        self.used -= bytes;
    }

    /// Bytes currently in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak bytes ever in use.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes in use for a given kind.
    pub fn used_by(&self, kind: AllocKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Remaining bytes.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }
}

/// Thread-safe accounting across all devices of a machine.
///
/// Real kernels in this workspace run on rayon worker threads, so the
/// accounting is behind a mutex; it is touched only at allocation
/// granularity (setup time), never per element.
pub struct MemoryAccounting {
    pools: Mutex<HashMap<DeviceId, MemoryPool>>,
}

impl MemoryAccounting {
    /// Build accounting from `(device, capacity)` pairs.
    pub fn new(devices: impl IntoIterator<Item = (DeviceId, u64)>) -> Self {
        let pools = devices
            .into_iter()
            .map(|(d, cap)| (d, MemoryPool::new(d, cap)))
            .collect();
        MemoryAccounting {
            pools: Mutex::new(pools),
        }
    }

    /// Record an allocation on a device.
    pub fn alloc(&self, device: DeviceId, kind: AllocKind, bytes: u64) -> Result<(), OutOfMemory> {
        let mut pools = self.pools.lock();
        pools
            .get_mut(&device)
            .unwrap_or_else(|| panic!("unknown device {device}"))
            .alloc(kind, bytes)
    }

    /// Record a free on a device.
    pub fn free(&self, device: DeviceId, kind: AllocKind, bytes: u64) {
        let mut pools = self.pools.lock();
        pools
            .get_mut(&device)
            .unwrap_or_else(|| panic!("unknown device {device}"))
            .free(kind, bytes);
    }

    /// Snapshot of one device's pool.
    pub fn pool(&self, device: DeviceId) -> MemoryPool {
        self.pools.lock()[&device].clone()
    }

    /// Per-device bytes in use for a kind, over GPU devices only, as
    /// `(device, bytes)` sorted by rank — the Table IV per-GPU columns.
    pub fn gpu_usage_by(&self, kind: AllocKind) -> Vec<(DeviceId, u64)> {
        let pools = self.pools.lock();
        let mut rows: Vec<_> = pools
            .iter()
            .filter(|(d, _)| d.is_gpu())
            .map(|(d, p)| (*d, p.used_by(kind)))
            .collect();
        rows.sort_by_key(|(d, _)| *d);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = MemoryPool::new(DeviceId::Gpu(0), 1000);
        p.alloc(AllocKind::Features, 600).unwrap();
        assert_eq!(p.used(), 600);
        assert_eq!(p.used_by(AllocKind::Features), 600);
        assert_eq!(p.available(), 400);
        p.free(AllocKind::Features, 200);
        assert_eq!(p.used(), 400);
        assert_eq!(p.peak(), 600);
    }

    #[test]
    fn over_capacity_is_oom() {
        let mut p = MemoryPool::new(DeviceId::Gpu(0), 100);
        p.alloc(AllocKind::Training, 80).unwrap();
        let err = p.alloc(AllocKind::Training, 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn free_of_unallocated_kind_panics() {
        let mut p = MemoryPool::new(DeviceId::Gpu(0), 100);
        p.free(AllocKind::Scratch, 1);
    }

    #[test]
    fn accounting_tracks_per_device() {
        let acct = MemoryAccounting::new([
            (DeviceId::Gpu(0), 1000),
            (DeviceId::Gpu(1), 1000),
            (DeviceId::Cpu, 5000),
        ]);
        acct.alloc(DeviceId::Gpu(0), AllocKind::GraphStructure, 300)
            .unwrap();
        acct.alloc(DeviceId::Gpu(1), AllocKind::GraphStructure, 310)
            .unwrap();
        acct.alloc(DeviceId::Cpu, AllocKind::Features, 4000)
            .unwrap();
        let rows = acct.gpu_usage_by(AllocKind::GraphStructure);
        assert_eq!(rows, vec![(DeviceId::Gpu(0), 300), (DeviceId::Gpu(1), 310)]);
        assert_eq!(acct.pool(DeviceId::Cpu).used_by(AllocKind::Features), 4000);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(AllocKind::GraphStructure.to_string(), "graph structure");
        assert_eq!(AllocKind::Features.to_string(), "node feature");
        assert_eq!(AllocKind::Training.to_string(), "training");
    }
}
