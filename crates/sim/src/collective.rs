//! Cost models for collective communication.
//!
//! WholeGraph uses an AllGather during distributed-shared-memory setup
//! (§III-B: exchanging CUDA IPC handles), AlltoAllV inside the NCCL-based
//! gather baseline (Figure 4, left), and AllReduce for gradient
//! synchronization in data-parallel multi-node training (§III-D).
//!
//! The models are standard ring-algorithm estimates: a ring collective over
//! `g` ranks moves `(g-1)/g` of the payload through each rank's link and
//! pays `O(g)` per-step latencies.

use crate::cost::CostModel;
use crate::time::SimTime;

/// Ring AllReduce of `bytes` per rank across `ranks` GPUs on one node
/// (NVLink): reduce-scatter + all-gather, each moving `(g-1)/g · bytes`.
pub fn allreduce_intra_node(model: &CostModel, bytes: u64, ranks: u32) -> SimTime {
    if ranks <= 1 || bytes == 0 {
        return SimTime::from_secs(model.nccl_op_overhead_s);
    }
    let g = ranks as f64;
    let moved = 2.0 * (g - 1.0) / g * bytes as f64;
    let steps = 2.0 * (g - 1.0);
    SimTime::from_secs(
        model.nccl_op_overhead_s
            + steps * model.p2p_base_latency_s
            + moved / model.topology.nvlink_bandwidth,
    )
}

/// AllGather of `bytes_per_rank` across `ranks` GPUs on one node — the IPC
/// handle exchange of §III-B (tiny payloads; latency-dominated).
pub fn allgather_intra_node(model: &CostModel, bytes_per_rank: u64, ranks: u32) -> SimTime {
    if ranks <= 1 {
        return SimTime::from_secs(model.nccl_op_overhead_s);
    }
    let g = ranks as f64;
    let moved = (g - 1.0) * bytes_per_rank as f64;
    SimTime::from_secs(
        model.nccl_op_overhead_s
            + (g - 1.0) * model.p2p_base_latency_s
            + moved / model.topology.nvlink_bandwidth,
    )
}

/// AlltoAllV where each of `ranks` GPUs sends `bytes_per_rank` in total,
/// split (in expectation) evenly across peers — step 4 of the NCCL-based
/// gather in Figure 4. The per-rank link carries `(g-1)/g` of its payload.
pub fn alltoallv_intra_node(model: &CostModel, bytes_per_rank: u64, ranks: u32) -> SimTime {
    if ranks <= 1 || bytes_per_rank == 0 {
        return SimTime::from_secs(model.nccl_op_overhead_s);
    }
    let g = ranks as f64;
    let moved = (g - 1.0) / g * bytes_per_rank as f64;
    SimTime::from_secs(
        model.nccl_op_overhead_s
            + (g - 1.0) * model.p2p_base_latency_s
            + moved / model.topology.nvlink_bandwidth,
    )
}

/// The inter-node ring term of the hierarchical AllReduce alone: `bytes`
/// per node over the node's aggregate IB bandwidth.
///
/// Exactly **zero** (not overhead-only) at `nodes <= 1`: a single node
/// never touches the IB fabric, and the multi-node executor relies on
/// this so that N=1 execution is time-identical to the single-node
/// pipeline.
pub fn allreduce_inter_node(model: &CostModel, bytes: u64, nodes: u32) -> SimTime {
    if nodes <= 1 || bytes == 0 {
        return SimTime::ZERO;
    }
    let n = nodes as f64;
    let moved = 2.0 * (n - 1.0) / n * bytes as f64;
    let steps = 2.0 * (n - 1.0);
    SimTime::from_secs(
        model.nccl_op_overhead_s
            + steps * model.ib_latency_s
            + moved / model.topology.node_ib_bandwidth(),
    )
}

/// Hierarchical AllReduce for multi-node data-parallel training (§III-D):
/// intra-node ring reduce, inter-node ring over the node's aggregate IB
/// bandwidth, intra-node broadcast.
pub fn allreduce_multi_node(
    model: &CostModel,
    bytes: u64,
    nodes: u32,
    gpus_per_node: u32,
) -> SimTime {
    allreduce_intra_node(model, bytes, gpus_per_node) + allreduce_inter_node(model, bytes, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_scales_sublinearly_with_ranks() {
        let m = CostModel::dgx_a100();
        let b = 100 * (1 << 20);
        let t2 = allreduce_intra_node(&m, b, 2);
        let t8 = allreduce_intra_node(&m, b, 8);
        // Ring AllReduce volume per link grows from (1/2)·2B to (7/8)·2B —
        // less than 2x even though ranks grew 4x.
        assert!(t8 > t2);
        assert!(t8 / t2 < 2.0);
    }

    #[test]
    fn single_rank_collectives_cost_only_overhead() {
        let m = CostModel::dgx_a100();
        let t = allreduce_intra_node(&m, 1 << 30, 1);
        assert!((t.as_micros() - m.nccl_op_overhead_s * 1e6).abs() < 1e-9);
    }

    #[test]
    fn allgather_of_ipc_handles_is_sub_millisecond() {
        // §III-B says the whole DSM setup takes tens to ~200 ms; the handle
        // exchange itself (64-byte handles) must be trivially small.
        let m = CostModel::dgx_a100();
        let t = allgather_intra_node(&m, 64, 8);
        assert!(t.as_millis() < 1.0);
    }

    #[test]
    fn multi_node_allreduce_adds_ib_term() {
        let m = CostModel::dgx_a100();
        let b = 200 * (1 << 20); // ~200 MB of gradients
        let one = allreduce_multi_node(&m, b, 1, 8);
        let four = allreduce_multi_node(&m, b, 4, 8);
        assert!(four > one);
        // The inter-node term is bounded by 2·bytes/IB-bandwidth plus
        // overheads — check it's in the right ballpark (not 100x off).
        let extra = (four - one).as_secs();
        let bound = 2.0 * b as f64 / m.topology.node_ib_bandwidth();
        assert!(extra < 2.0 * bound + 1e-3);
        assert!(extra > 0.25 * bound);
    }

    #[test]
    fn inter_node_term_is_exactly_zero_on_one_node() {
        // A single node never touches IB — the multi-node executor's N=1
        // bit/time identity depends on this being ZERO, not overhead-only.
        let m = CostModel::dgx_a100();
        assert!(allreduce_inter_node(&m, 1 << 30, 1).is_zero());
        assert!(allreduce_inter_node(&m, 0, 8).is_zero());
        // Hierarchical AllReduce decomposes exactly as intra + inter.
        let b = 200 * (1 << 20);
        let sum = allreduce_intra_node(&m, b, 8) + allreduce_inter_node(&m, b, 4);
        assert_eq!(sum, allreduce_multi_node(&m, b, 4, 8));
    }

    #[test]
    fn inter_node_term_grows_with_node_count() {
        let m = CostModel::dgx_a100();
        let b = 200 * (1 << 20);
        let t2 = allreduce_inter_node(&m, b, 2);
        let t8 = allreduce_inter_node(&m, b, 8);
        assert!(t8 > t2);
        // Ring volume per link is bounded by 2·bytes; sublinear in nodes.
        assert!(t8 / t2 < 2.0);
    }

    #[test]
    fn alltoallv_moves_seven_eighths() {
        let m = CostModel::dgx_a100();
        let b = 1u64 << 30;
        let t = alltoallv_intra_node(&m, b, 8);
        let ideal = (7.0 / 8.0) * b as f64 / m.topology.nvlink_bandwidth;
        assert!(t.as_secs() > ideal);
        assert!(t.as_secs() < ideal * 1.2);
    }
}
