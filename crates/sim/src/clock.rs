//! Per-device virtual clocks.
//!
//! Each simulated device owns a [`DeviceClock`]. Work performed "on" the
//! device advances its clock by the cost model's estimate for that work.
//! Barriers synchronize a set of clocks to the maximum — exactly how a
//! data-parallel training step behaves (everyone waits for the slowest
//! rank at the AllReduce).

use crate::time::SimTime;

/// A monotonically advancing virtual clock for one device.
#[derive(Clone, Debug, Default)]
pub struct DeviceClock {
    now: SimTime,
}

impl DeviceClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time on this device.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `dt`, returning the new time.
    ///
    /// Negative spans are rejected — simulated work cannot take negative
    /// time, and silently accepting one would corrupt every downstream
    /// utilization figure.
    pub fn advance(&mut self, dt: SimTime) -> SimTime {
        assert!(
            dt.as_secs() >= 0.0,
            "cannot advance a device clock by a negative span ({dt})"
        );
        self.now += dt;
        self.now
    }

    /// Move the clock forward to `t` if `t` is later (no-op otherwise).
    /// Used by barriers and by waits on data produced by another device.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Reset to time zero (new experiment on the same machine).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

/// Synchronize a set of clocks to their common maximum (a barrier), and
/// return that barrier time. An empty slice is a degenerate barrier —
/// nothing to synchronize — and returns [`SimTime::ZERO`] rather than
/// being an error: executors routinely barrier "whatever streams exist",
/// which can be none on a machine with zero participants.
pub fn barrier(clocks: &mut [DeviceClock]) -> SimTime {
    let Some(t) = clocks.iter().map(DeviceClock::now).reduce(SimTime::max) else {
        return SimTime::ZERO;
    };
    for c in clocks.iter_mut() {
        c.advance_to(t);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = DeviceClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_micros(5.0));
        c.advance(SimTime::from_micros(7.0));
        assert!((c.now().as_micros() - 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_advance_panics() {
        let mut c = DeviceClock::new();
        c.advance(SimTime::from_secs(-1.0));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = DeviceClock::new();
        c.advance(SimTime::from_secs(2.0));
        c.advance_to(SimTime::from_secs(1.0)); // earlier: no-op
        assert_eq!(c.now().as_secs(), 2.0);
        c.advance_to(SimTime::from_secs(3.0));
        assert_eq!(c.now().as_secs(), 3.0);
    }

    #[test]
    fn barrier_syncs_to_slowest() {
        let mut clocks = vec![DeviceClock::new(), DeviceClock::new(), DeviceClock::new()];
        clocks[0].advance(SimTime::from_secs(1.0));
        clocks[1].advance(SimTime::from_secs(5.0));
        clocks[2].advance(SimTime::from_secs(3.0));
        let t = barrier(&mut clocks);
        assert_eq!(t.as_secs(), 5.0);
        for c in &clocks {
            assert_eq!(c.now().as_secs(), 5.0);
        }
    }

    #[test]
    fn barrier_on_empty_slice_is_time_zero() {
        let mut clocks: Vec<DeviceClock> = Vec::new();
        assert_eq!(barrier(&mut clocks), SimTime::ZERO);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = DeviceClock::new();
        c.advance(SimTime::from_secs(9.0));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
