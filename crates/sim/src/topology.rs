//! Interconnect topology of a simulated node.
//!
//! The default topology mirrors Figure 6 of the paper (DGX-A100):
//!
//! * all 8 GPUs attach to an NVSwitch fabric — every GPU has 300 GB/s of
//!   unidirectional NVLink bandwidth into the switch, so any GPU↔GPU pair
//!   communicates at NVLink rate without contention on the switch itself;
//! * GPUs attach to the host through PCIe 4.0 x16 switches, **two GPUs (and
//!   two IB NICs) per uplink** — when all GPUs stream from host memory each
//!   gets only half of the 32 GB/s x16 bandwidth (§III-B: "each GPU can get
//!   only one half of the PCIe 4.0 x16 bandwidth, namely 16 GB/s");
//! * each GPU pair shares two ConnectX-6 HDR InfiniBand NICs (200 Gb/s
//!   each) for inter-node traffic.

use crate::device::DeviceId;

/// The kind of link a transfer crosses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LinkKind {
    /// Local access within one device's memory (HBM or host DRAM).
    Local,
    /// GPU↔GPU over NVLink/NVSwitch (GPUDirect P2P path).
    NvLink,
    /// GPU↔host over a PCIe 4.0 x16 uplink (possibly shared).
    Pcie,
    /// Node↔node over InfiniBand.
    InfiniBand,
}

/// A resolved route between two endpoints plus the contention factor the
/// cost model must apply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Path {
    /// The bottleneck link kind on the route.
    pub link: LinkKind,
    /// Fraction of the link's nominal bandwidth available to this transfer
    /// (e.g. 0.5 when two GPUs share a PCIe uplink and both are active).
    pub bandwidth_share: f64,
}

/// Interconnect description of one machine node.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Number of GPUs on the node.
    pub num_gpus: u32,
    /// Unidirectional NVLink bandwidth per GPU into the switch, bytes/s.
    /// DGX-A100: 300 GB/s (600 GB/s bidirectional).
    pub nvlink_bandwidth: f64,
    /// PCIe uplink bandwidth, bytes/s. PCIe 4.0 x16 ≈ 32 GB/s.
    pub pcie_bandwidth: f64,
    /// GPUs sharing one PCIe uplink (DGX-A100: 2).
    pub gpus_per_pcie_switch: u32,
    /// InfiniBand bandwidth per NIC, bytes/s. ConnectX-6 HDR: 200 Gb/s = 25 GB/s.
    pub ib_bandwidth_per_nic: f64,
    /// Number of IB NICs on the node (DGX-A100: 8 compute NICs).
    pub num_nics: u32,
    /// Whether peer access has been enabled between all GPU pairs
    /// (`cudaDeviceEnablePeerAccess` in the paper). Disabled peer access
    /// forces GPU↔GPU traffic to bounce through host PCIe.
    pub peer_access_enabled: bool,
}

impl Topology {
    /// The DGX-A100 topology of the paper's evaluation (Figure 6).
    pub fn dgx_a100() -> Self {
        Topology {
            num_gpus: 8,
            nvlink_bandwidth: 300.0e9,
            pcie_bandwidth: 32.0e9,
            gpus_per_pcie_switch: 2,
            ib_bandwidth_per_nic: 25.0e9,
            num_nics: 8,
            peer_access_enabled: true,
        }
    }

    /// A DGX-like node with a custom GPU count (used by tests and scaled
    /// experiments; bandwidth characteristics stay per-GPU identical).
    pub fn dgx_like(num_gpus: u32) -> Self {
        Topology {
            num_gpus,
            ..Topology::dgx_a100()
        }
    }

    /// Resolve the route between `src` (where the data lives) and `dst`
    /// (the device performing the access).
    ///
    /// `concurrent_gpus_on_pcie` is how many GPUs are simultaneously
    /// streaming over PCIe — the caller (usually a pipeline running the same
    /// phase on every GPU) knows this; 0 or 1 means no sharing.
    pub fn path(&self, src: DeviceId, dst: DeviceId, concurrent_gpus_on_pcie: u32) -> Path {
        if src == dst {
            return Path {
                link: LinkKind::Local,
                bandwidth_share: 1.0,
            };
        }
        match (src, dst) {
            (DeviceId::Gpu(_), DeviceId::Gpu(_)) => {
                if self.peer_access_enabled {
                    Path {
                        link: LinkKind::NvLink,
                        bandwidth_share: 1.0,
                    }
                } else {
                    // Without peer access the transfer is staged through
                    // host memory over both GPUs' PCIe uplinks.
                    Path {
                        link: LinkKind::Pcie,
                        bandwidth_share: self.pcie_share(concurrent_gpus_on_pcie),
                    }
                }
            }
            (DeviceId::Cpu, DeviceId::Gpu(_)) | (DeviceId::Gpu(_), DeviceId::Cpu) => Path {
                link: LinkKind::Pcie,
                bandwidth_share: self.pcie_share(concurrent_gpus_on_pcie),
            },
            (DeviceId::Cpu, DeviceId::Cpu) => Path {
                link: LinkKind::Local,
                bandwidth_share: 1.0,
            },
        }
    }

    /// Fraction of a PCIe uplink available to one GPU when `concurrent`
    /// GPUs are streaming simultaneously.
    ///
    /// With `gpus_per_pcie_switch = 2` and all 8 GPUs active this is 0.5 —
    /// the §III-B "16 GB/s per GPU" situation.
    pub fn pcie_share(&self, concurrent: u32) -> f64 {
        if concurrent <= 1 {
            return 1.0;
        }
        // GPUs are distributed round-robin over the uplinks; contention on
        // one uplink is the number of active GPUs mapped onto it.
        let uplinks = (self.num_gpus / self.gpus_per_pcie_switch).max(1);
        let per_uplink = (concurrent as f64 / uplinks as f64).ceil().max(1.0);
        1.0 / per_uplink
    }

    /// Aggregate InfiniBand bandwidth of the node in bytes/s.
    pub fn node_ib_bandwidth(&self) -> f64 {
        self.ib_bandwidth_per_nic * self.num_nics as f64
    }

    /// All GPU device ids on this node.
    pub fn gpus(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.num_gpus).map(DeviceId::Gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_defaults_match_paper() {
        let t = Topology::dgx_a100();
        assert_eq!(t.num_gpus, 8);
        assert_eq!(t.nvlink_bandwidth, 300.0e9);
        assert_eq!(t.pcie_bandwidth, 32.0e9);
        assert_eq!(t.gpus_per_pcie_switch, 2);
    }

    #[test]
    fn gpu_to_gpu_uses_nvlink_with_peer_access() {
        let t = Topology::dgx_a100();
        let p = t.path(DeviceId::Gpu(0), DeviceId::Gpu(5), 8);
        assert_eq!(p.link, LinkKind::NvLink);
        assert_eq!(p.bandwidth_share, 1.0);
    }

    #[test]
    fn gpu_to_gpu_without_peer_access_bounces_over_pcie() {
        let mut t = Topology::dgx_a100();
        t.peer_access_enabled = false;
        let p = t.path(DeviceId::Gpu(0), DeviceId::Gpu(1), 8);
        assert_eq!(p.link, LinkKind::Pcie);
        assert!(p.bandwidth_share < 1.0);
    }

    #[test]
    fn local_access_is_local() {
        let t = Topology::dgx_a100();
        assert_eq!(
            t.path(DeviceId::Gpu(2), DeviceId::Gpu(2), 8).link,
            LinkKind::Local
        );
        assert_eq!(
            t.path(DeviceId::Cpu, DeviceId::Cpu, 0).link,
            LinkKind::Local
        );
    }

    #[test]
    fn pcie_sharing_halves_bandwidth_when_all_gpus_stream() {
        let t = Topology::dgx_a100();
        // 8 GPUs over 4 uplinks => 2 per uplink => each gets half.
        assert_eq!(t.pcie_share(8), 0.5);
        // A single active GPU owns its uplink.
        assert_eq!(t.pcie_share(1), 1.0);
        assert_eq!(t.pcie_share(0), 1.0);
        // The host->GPU path reflects this: 32 GB/s * 0.5 = 16 GB/s (§III-B).
        let p = t.path(DeviceId::Cpu, DeviceId::Gpu(0), 8);
        assert_eq!(p.link, LinkKind::Pcie);
        let effective = t.pcie_bandwidth * p.bandwidth_share;
        assert_eq!(effective, 16.0e9);
    }

    #[test]
    fn pcie_share_with_fewer_gpus() {
        let t = Topology::dgx_like(4); // 4 GPUs -> 2 uplinks
        assert_eq!(t.pcie_share(4), 0.5);
        assert_eq!(t.pcie_share(2), 1.0);
    }

    #[test]
    fn gpu_iterator() {
        let t = Topology::dgx_like(3);
        let gpus: Vec<_> = t.gpus().collect();
        assert_eq!(
            gpus,
            vec![DeviceId::Gpu(0), DeviceId::Gpu(1), DeviceId::Gpu(2)]
        );
    }

    #[test]
    fn node_ib_aggregate() {
        let t = Topology::dgx_a100();
        assert_eq!(t.node_ib_bandwidth(), 200.0e9);
    }
}
