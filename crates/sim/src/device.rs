//! Device identities and hardware specifications.
//!
//! A simulated machine contains GPUs and CPU sockets. Each device carries a
//! [`DeviceSpec`] describing the performance characteristics the cost models
//! in [`crate::cost`] consume. The default specs mirror the DGX-A100 used in
//! the paper's evaluation (§IV "Experimental Setup").

use std::fmt;

/// Identifies a device within a single machine node.
///
/// GPU ranks are dense `0..num_gpus`; the CPU (host) side of the node is a
/// distinct device so transfers to/from host memory can be routed over PCIe.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DeviceId {
    /// GPU with the given rank on the node.
    Gpu(u32),
    /// The host CPU (both sockets modelled as one endpoint attached to host
    /// DRAM; socket-level NUMA effects are below the fidelity this
    /// reproduction needs).
    Cpu,
}

impl DeviceId {
    /// The GPU rank, if this is a GPU.
    pub fn gpu_rank(self) -> Option<u32> {
        match self {
            DeviceId::Gpu(r) => Some(r),
            DeviceId::Cpu => None,
        }
    }

    /// True if this is a GPU device.
    pub fn is_gpu(self) -> bool {
        matches!(self, DeviceId::Gpu(_))
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Gpu(r) => write!(f, "GPU{r}"),
            DeviceId::Cpu => write!(f, "CPU"),
        }
    }
}

/// Kind of device, used by cost models to pick compute rates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceKind {
    /// A massively-parallel accelerator (A100-class in the default config).
    Gpu,
    /// A multicore host CPU (2× AMD Rome 7742 in the default config).
    Cpu,
}

/// Static performance description of a device.
///
/// The defaults are taken from public A100/DGX-A100 numbers and from the
/// paper where it states them explicitly (e.g. 300 GB/s unidirectional
/// NVLink per GPU in §III-B).
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// What kind of device this is.
    pub kind: DeviceKind,
    /// Human-readable model name (for reports).
    pub name: &'static str,
    /// Peak dense fp32 throughput in FLOP/s. A100: 19.5 TFLOP/s.
    /// 2× AMD Rome 7742 (128 cores × ~35 GFLOP/s): ~4.5 TFLOP/s, of which a
    /// GNN data-loading path uses a small fraction.
    pub peak_flops_f32: f64,
    /// Local memory (HBM for GPUs, DRAM for the host) capacity in bytes.
    pub memory_capacity: u64,
    /// Local memory streaming bandwidth in bytes/s (A100: 1555 GB/s HBM2e;
    /// host: ~200 GB/s over 8 DDR4-3200 channels per socket, shared).
    pub memory_bandwidth: f64,
    /// Achievable fraction of `peak_flops_f32` for well-shaped dense kernels
    /// (cuBLAS-class GEMMs hit ~0.7–0.85 on A100; our model uses 0.6 to also
    /// absorb framework overhead around the kernels).
    pub dense_efficiency: f64,
    /// Achievable fraction of peak for sparse/irregular kernels (SpMM,
    /// SDDMM, sampling) — memory-bound, so far lower.
    pub sparse_efficiency: f64,
    /// Fixed overhead of launching one kernel / one parallel region.
    /// CUDA kernel launch ≈ 3–10 µs; we use 5 µs.
    pub kernel_launch_overhead_s: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB as found in the paper's DGX-A100.
    pub fn a100_40gb() -> Self {
        DeviceSpec {
            kind: DeviceKind::Gpu,
            name: "A100-SXM4-40GB",
            peak_flops_f32: 19.5e12,
            memory_capacity: 40 * (1 << 30),
            memory_bandwidth: 1555.0e9,
            dense_efficiency: 0.60,
            sparse_efficiency: 0.08,
            kernel_launch_overhead_s: 5.0e-6,
        }
    }

    /// The DGX-A100 host: 2× AMD Rome 7742 (128 cores) + 1 TB DRAM.
    pub fn dgx_host() -> Self {
        DeviceSpec {
            kind: DeviceKind::Cpu,
            name: "2x AMD Rome 7742",
            peak_flops_f32: 4.5e12,
            memory_capacity: 1024 * (1 << 30),
            memory_bandwidth: 380.0e9,
            dense_efficiency: 0.30,
            sparse_efficiency: 0.02,
            // A parallel-for dispatch on the host is far cheaper than a CUDA
            // kernel launch.
            kernel_launch_overhead_s: 1.0e-6,
        }
    }

    /// Effective dense-compute rate in FLOP/s.
    pub fn dense_flops(&self) -> f64 {
        self.peak_flops_f32 * self.dense_efficiency
    }

    /// Effective sparse/irregular-compute rate in FLOP/s.
    pub fn sparse_flops(&self) -> f64 {
        self.peak_flops_f32 * self.sparse_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_accessors() {
        assert_eq!(DeviceId::Gpu(3).gpu_rank(), Some(3));
        assert_eq!(DeviceId::Cpu.gpu_rank(), None);
        assert!(DeviceId::Gpu(0).is_gpu());
        assert!(!DeviceId::Cpu.is_gpu());
    }

    #[test]
    fn device_id_display_and_order() {
        assert_eq!(DeviceId::Gpu(5).to_string(), "GPU5");
        assert_eq!(DeviceId::Cpu.to_string(), "CPU");
        assert!(DeviceId::Gpu(0) < DeviceId::Gpu(1));
    }

    #[test]
    fn a100_spec_sane() {
        let s = DeviceSpec::a100_40gb();
        assert_eq!(s.kind, DeviceKind::Gpu);
        assert_eq!(s.memory_capacity, 40 * (1 << 30));
        // Effective dense rate must be below peak and above 10% of peak.
        assert!(s.dense_flops() < s.peak_flops_f32);
        assert!(s.dense_flops() > 0.1 * s.peak_flops_f32);
        assert!(s.sparse_flops() < s.dense_flops());
    }

    #[test]
    fn host_spec_sane() {
        let h = DeviceSpec::dgx_host();
        assert_eq!(h.kind, DeviceKind::Cpu);
        // The host has more capacity but far less compute than a GPU.
        assert!(h.memory_capacity > DeviceSpec::a100_40gb().memory_capacity);
        assert!(h.dense_flops() < DeviceSpec::a100_40gb().dense_flops());
    }
}
