//! The assembled simulated machine and multi-node cluster.
//!
//! A [`Machine`] bundles the pieces every higher layer needs: device specs,
//! the interconnect cost model, one virtual clock and one utilization trace
//! per device, and shared memory-capacity accounting. Pipelines "run" work
//! on a device by calling [`Machine::run`], which advances that device's
//! clock and appends a trace interval.

use std::collections::HashMap;
use std::sync::Arc;

use crate::clock::{barrier, DeviceClock};
use crate::cost::CostModel;
use crate::device::{DeviceId, DeviceSpec};
use crate::memory::MemoryAccounting;
use crate::stream::Stream;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{Phase, TraceEvent, UtilizationTrace};

/// Configuration of a simulated node.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Interconnect description.
    pub topology: Topology,
    /// Spec applied to every GPU.
    pub gpu_spec: DeviceSpec,
    /// Spec of the host CPU.
    pub host_spec: DeviceSpec,
}

impl MachineConfig {
    /// The paper's DGX-A100 node: 8× A100-40GB + 2× AMD Rome.
    pub fn dgx_a100() -> Self {
        MachineConfig {
            topology: Topology::dgx_a100(),
            gpu_spec: DeviceSpec::a100_40gb(),
            host_spec: DeviceSpec::dgx_host(),
        }
    }

    /// A DGX-like node with a custom GPU count (scaled experiments/tests).
    pub fn dgx_like(num_gpus: u32) -> Self {
        MachineConfig {
            topology: Topology::dgx_like(num_gpus),
            ..MachineConfig::dgx_a100()
        }
    }
}

/// One simulated machine node.
pub struct Machine {
    config: MachineConfig,
    cost: CostModel,
    clocks: HashMap<DeviceId, DeviceClock>,
    traces: HashMap<DeviceId, UtilizationTrace>,
    memory: Arc<MemoryAccounting>,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let cost = CostModel::for_topology(config.topology.clone());
        let mut clocks = HashMap::new();
        let mut traces = HashMap::new();
        let mut mem = Vec::new();
        for gpu in config.topology.gpus() {
            clocks.insert(gpu, DeviceClock::new());
            traces.insert(gpu, UtilizationTrace::new());
            mem.push((gpu, config.gpu_spec.memory_capacity));
        }
        clocks.insert(DeviceId::Cpu, DeviceClock::new());
        traces.insert(DeviceId::Cpu, UtilizationTrace::new());
        mem.push((DeviceId::Cpu, config.host_spec.memory_capacity));
        Machine {
            config,
            cost,
            clocks,
            traces,
            memory: Arc::new(MemoryAccounting::new(mem)),
        }
    }

    /// The paper's 8-GPU DGX-A100.
    pub fn dgx_a100() -> Self {
        Machine::new(MachineConfig::dgx_a100())
    }

    /// Node configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of GPUs on the node.
    pub fn num_gpus(&self) -> u32 {
        self.config.topology.num_gpus
    }

    /// GPU device ids.
    pub fn gpus(&self) -> Vec<DeviceId> {
        self.config.topology.gpus().collect()
    }

    /// Spec of a device.
    pub fn spec(&self, device: DeviceId) -> &DeviceSpec {
        match device {
            DeviceId::Gpu(_) => &self.config.gpu_spec,
            DeviceId::Cpu => &self.config.host_spec,
        }
    }

    /// The interconnect cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Shared memory accounting (clone the `Arc` to hand to stores).
    pub fn memory(&self) -> Arc<MemoryAccounting> {
        Arc::clone(&self.memory)
    }

    /// Current simulated time on a device.
    pub fn now(&self, device: DeviceId) -> SimTime {
        self.clocks[&device].now()
    }

    /// Run `dt` of work on `device` in the given phase, recording a trace
    /// interval. `busy` distinguishes "the device computed" from "the
    /// device waited for this long" (Figure 12).
    pub fn run(&mut self, device: DeviceId, phase: Phase, busy: bool, dt: SimTime) -> SimTime {
        let clock = self
            .clocks
            .get_mut(&device)
            .unwrap_or_else(|| panic!("unknown device {device}"));
        let start = clock.now();
        let end = clock.advance(dt);
        self.traces.get_mut(&device).unwrap().record(TraceEvent {
            device,
            start,
            end,
            phase,
            busy,
        });
        end
    }

    /// Run the same span of work on every GPU concurrently (the usual
    /// data-parallel situation: all ranks execute the phase at once).
    pub fn run_all_gpus(&mut self, phase: Phase, busy: bool, dt: SimTime) -> SimTime {
        let mut end = SimTime::ZERO;
        for gpu in self.gpus() {
            end = end.max(self.run(gpu, phase, busy, dt));
        }
        end
    }

    /// Open a new [`Stream`] on `device`, positioned at the device's
    /// current clock time so stream spans line up with work already
    /// charged through [`Machine::run`]. The stream is an independent
    /// timeline: advancing it does not move the device clock — use
    /// [`Machine::record_span`] to charge its spans back to the device.
    pub fn stream(&self, device: DeviceId) -> Stream {
        assert!(self.clocks.contains_key(&device), "unknown device {device}");
        Stream::new_at(&self.config.topology, device, self.now(device))
    }

    /// Record a span scheduled on a stream into `device`'s trace and move
    /// the device clock to the span's end if it is later. This is how
    /// stream-scheduled executors publish overlapping per-phase intervals:
    /// several spans may cover the same simulated time, and
    /// [`UtilizationTrace::busy_time`] counts the covered time once.
    pub fn record_span(
        &mut self,
        device: DeviceId,
        phase: Phase,
        busy: bool,
        start: SimTime,
        end: SimTime,
    ) {
        assert!(
            end >= start,
            "span on {device} ends before it starts ({start} > {end})"
        );
        self.traces
            .get_mut(&device)
            .unwrap_or_else(|| panic!("unknown device {device}"))
            .record(TraceEvent {
                device,
                start,
                end,
                phase,
                busy,
            });
        self.clocks.get_mut(&device).unwrap().advance_to(end);
    }

    /// Advance every GPU clock to `t`, recording the wait as an `Idle`
    /// (non-busy) trace interval. Clocks already at or past `t` are left
    /// untouched. This is the per-node half of a cross-machine barrier:
    /// the idle spans make inter-node load imbalance visible in traces.
    pub fn idle_until(&mut self, t: SimTime) {
        for gpu in self.gpus() {
            let now = self.now(gpu);
            if now < t {
                self.run(gpu, Phase::Idle, false, t - now);
            }
        }
    }

    /// Barrier across all GPU clocks; returns the barrier time.
    pub fn barrier_gpus(&mut self) -> SimTime {
        let gpus = self.gpus();
        let mut clocks: Vec<DeviceClock> = gpus.iter().map(|g| self.clocks[g].clone()).collect();
        let t = barrier(&mut clocks);
        for (g, c) in gpus.into_iter().zip(clocks) {
            self.clocks.insert(g, c);
        }
        t
    }

    /// Utilization trace of one device.
    pub fn trace(&self, device: DeviceId) -> &UtilizationTrace {
        &self.traces[&device]
    }

    /// Reset all clocks and traces (fresh experiment on a warm machine —
    /// memory accounting, i.e. loaded data, is preserved).
    pub fn reset_time(&mut self) {
        for c in self.clocks.values_mut() {
            c.reset();
        }
        for t in self.traces.values_mut() {
            *t = UtilizationTrace::new();
        }
    }
}

/// Rendezvous across several machines' GPU clocks: every GPU on every
/// machine idles (with a visible `Idle` trace interval) until the
/// cluster-wide maximum, which is returned. This is the trailing barrier
/// of a data-parallel epoch — the point where the slowest node gates
/// everyone else.
pub fn cluster_barrier(machines: &mut [&mut Machine]) -> SimTime {
    let mut t = SimTime::ZERO;
    for m in machines.iter() {
        for gpu in m.gpus() {
            t = t.max(m.now(gpu));
        }
    }
    for m in machines.iter_mut() {
        m.idle_until(t);
    }
    t
}

/// A cluster of identical machine nodes for multi-node scaling experiments
/// (§III-D / Figure 13). Each node has its own clocks and traces; in
/// data-parallel training every node runs its own pipeline and the nodes
/// rendezvous at [`Cluster::barrier`].
pub struct Cluster {
    nodes: Vec<Machine>,
}

impl Cluster {
    /// A cluster of `num_nodes` nodes with the given per-node config.
    pub fn new(num_nodes: u32, config: MachineConfig) -> Self {
        assert!(num_nodes >= 1, "a cluster needs at least one node");
        Cluster {
            nodes: (0..num_nodes)
                .map(|_| Machine::new(config.clone()))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// One node, immutably.
    pub fn node(&self, k: usize) -> &Machine {
        &self.nodes[k]
    }

    /// One node, mutably.
    pub fn node_mut(&mut self, k: usize) -> &mut Machine {
        &mut self.nodes[k]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Machine] {
        &self.nodes
    }

    /// Total GPU count across the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(Machine::num_gpus).sum()
    }

    /// Cluster-wide GPU barrier (see [`cluster_barrier`]).
    pub fn barrier(&mut self) -> SimTime {
        let mut refs: Vec<&mut Machine> = self.nodes.iter_mut().collect();
        cluster_barrier(&mut refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_has_all_devices() {
        let m = Machine::dgx_a100();
        assert_eq!(m.num_gpus(), 8);
        assert_eq!(m.gpus().len(), 8);
        assert_eq!(m.now(DeviceId::Gpu(7)), SimTime::ZERO);
        assert_eq!(m.now(DeviceId::Cpu), SimTime::ZERO);
    }

    #[test]
    fn run_advances_clock_and_traces() {
        let mut m = Machine::dgx_a100();
        m.run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_millis(5.0),
        );
        m.run(
            DeviceId::Gpu(0),
            Phase::Idle,
            false,
            SimTime::from_millis(5.0),
        );
        assert!((m.now(DeviceId::Gpu(0)).as_millis() - 10.0).abs() < 1e-9);
        let tr = m.trace(DeviceId::Gpu(0));
        assert_eq!(tr.events().len(), 2);
        let u = tr.utilization(SimTime::ZERO, m.now(DeviceId::Gpu(0)));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn run_all_gpus_moves_every_clock() {
        let mut m = Machine::new(MachineConfig::dgx_like(4));
        let end = m.run_all_gpus(Phase::Sampling, true, SimTime::from_millis(1.0));
        assert!((end.as_millis() - 1.0).abs() < 1e-9);
        for g in m.gpus() {
            assert!((m.now(g).as_millis() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn barrier_aligns_gpu_clocks() {
        let mut m = Machine::new(MachineConfig::dgx_like(2));
        m.run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_secs(1.0),
        );
        let t = m.barrier_gpus();
        assert_eq!(t.as_secs(), 1.0);
        assert_eq!(m.now(DeviceId::Gpu(1)).as_secs(), 1.0);
    }

    #[test]
    fn reset_time_clears_clocks_and_traces() {
        let mut m = Machine::new(MachineConfig::dgx_like(2));
        m.run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_secs(1.0),
        );
        m.reset_time();
        assert_eq!(m.now(DeviceId::Gpu(0)), SimTime::ZERO);
        assert!(m.trace(DeviceId::Gpu(0)).events().is_empty());
    }

    #[test]
    fn cluster_counts_gpus() {
        let c = Cluster::new(4, MachineConfig::dgx_a100());
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.total_gpus(), 32);
    }

    #[test]
    fn idle_until_records_visible_wait() {
        let mut m = Machine::new(MachineConfig::dgx_like(2));
        m.run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_secs(1.0),
        );
        m.idle_until(SimTime::from_secs(1.0));
        // GPU 0 is already at the target — no span; GPU 1 idles for 1 s.
        assert_eq!(m.trace(DeviceId::Gpu(0)).events().len(), 1);
        let ev = &m.trace(DeviceId::Gpu(1)).events()[0];
        assert_eq!(ev.phase, Phase::Idle);
        assert!(!ev.busy);
        assert_eq!(m.now(DeviceId::Gpu(1)), SimTime::from_secs(1.0));
    }

    #[test]
    fn cluster_barrier_gates_on_slowest_node() {
        let mut c = Cluster::new(2, MachineConfig::dgx_like(2));
        c.node_mut(1).run(
            DeviceId::Gpu(0),
            Phase::Training,
            true,
            SimTime::from_secs(2.0),
        );
        let t = c.barrier();
        assert_eq!(t, SimTime::from_secs(2.0));
        for k in 0..2 {
            for g in c.node(k).gpus() {
                assert_eq!(c.node(k).now(g), t);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        Cluster::new(0, MachineConfig::dgx_a100());
    }
}
