//! Streams and events: independent command timelines on one device.
//!
//! A real GPU overlaps work by enqueueing it on separate CUDA streams and
//! expressing cross-stream dependencies with events (`cudaEventRecord` /
//! `cudaStreamWaitEvent`). The simulated analogue: a [`Stream`] is a
//! [`DeviceClock`] tagged with its device, an [`Event`] is a recorded
//! instant on a stream, and waiting on an event fast-forwards the waiting
//! stream to the event's completion time. One device can therefore carry
//! several concurrent timelines (sample / gather / train) whose spans
//! overlap in simulated time while still barriering correctly.

use crate::clock::{barrier, DeviceClock};
use crate::device::DeviceId;
use crate::time::SimTime;
use crate::topology::Topology;

/// A recorded instant on a stream (the `cudaEvent_t` analogue). Events
/// are plain values: copy them across streams to express dependencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    device: DeviceId,
    time: SimTime,
}

impl Event {
    /// Device of the stream the event was recorded on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The simulated instant the event completes.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Simulated time elapsed since an earlier event (the
    /// `cudaEventElapsedTime` analogue). Panics if `earlier` is in fact
    /// later — elapsed time between ordered events cannot be negative.
    pub fn elapsed_since(&self, earlier: &Event) -> SimTime {
        assert!(
            self.time >= earlier.time,
            "event at {} is earlier than the reference event at {}",
            self.time,
            earlier.time
        );
        self.time - earlier.time
    }
}

/// An independent work timeline on one device (the `cudaStream_t`
/// analogue). Work enqueued on a stream runs back-to-back; work on
/// *different* streams of the same device overlaps unless ordered through
/// [`Stream::wait`] on an [`Event`].
#[derive(Clone, Debug)]
pub struct Stream {
    device: DeviceId,
    clock: DeviceClock,
}

impl Stream {
    /// Create a stream on `device`, starting at time zero. The device id
    /// is validated against the machine topology: creating a stream on a
    /// GPU the node does not have is a programming error, caught here
    /// rather than as a silent parallel timeline on a phantom device.
    pub fn new(topology: &Topology, device: DeviceId) -> Self {
        if let DeviceId::Gpu(i) = device {
            assert!(
                i < topology.num_gpus,
                "stream on unknown device Gpu({i}): topology has {} GPUs",
                topology.num_gpus
            );
        }
        Stream {
            device,
            clock: DeviceClock::new(),
        }
    }

    /// Create a stream starting at `at` (e.g. a device clock's current
    /// time, so stream spans line up with work already charged).
    pub fn new_at(topology: &Topology, device: DeviceId, at: SimTime) -> Self {
        let mut s = Stream::new(topology, device);
        s.clock.advance_to(at);
        s
    }

    /// The device this stream runs on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The stream's current position in simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Enqueue `dt` of work; returns the `(start, end)` span it occupies
    /// on this stream's timeline.
    pub fn run(&mut self, dt: SimTime) -> (SimTime, SimTime) {
        let start = self.clock.now();
        let end = self.clock.advance(dt);
        (start, end)
    }

    /// Record an event at the stream's current position
    /// (`cudaEventRecord`).
    pub fn record(&self) -> Event {
        Event {
            device: self.device,
            time: self.clock.now(),
        }
    }

    /// Stall this stream until `ev` has completed
    /// (`cudaStreamWaitEvent`) — the inter-stream dependency primitive.
    /// A wait on an already-completed event is free.
    pub fn wait(&mut self, ev: Event) {
        self.clock.advance_to(ev.time);
    }
}

/// Synchronize a set of streams to their common maximum — the multi-stream
/// analogue of [`crate::clock::barrier`] (`cudaDeviceSynchronize` across
/// the timelines involved). Returns [`SimTime::ZERO`] for no streams.
pub fn sync(streams: &mut [&mut Stream]) -> SimTime {
    let mut clocks: Vec<DeviceClock> = streams.iter().map(|s| s.clock.clone()).collect();
    let t = barrier(&mut clocks);
    for (s, c) in streams.iter_mut().zip(clocks) {
        s.clock = c;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::dgx_like(4)
    }

    #[test]
    fn streams_on_one_device_overlap() {
        let t = topo();
        let mut a = Stream::new(&t, DeviceId::Gpu(0));
        let mut b = Stream::new(&t, DeviceId::Gpu(0));
        let (a0, a1) = a.run(SimTime::from_millis(10.0));
        let (b0, b1) = b.run(SimTime::from_millis(4.0));
        // Both spans start at zero: independent timelines.
        assert_eq!(a0, SimTime::ZERO);
        assert_eq!(b0, SimTime::ZERO);
        assert!(b1 < a1);
    }

    #[test]
    fn wait_orders_across_streams() {
        let t = topo();
        let mut producer = Stream::new(&t, DeviceId::Gpu(0));
        let mut consumer = Stream::new(&t, DeviceId::Gpu(0));
        producer.run(SimTime::from_millis(5.0));
        let ready = producer.record();
        consumer.run(SimTime::from_millis(1.0));
        consumer.wait(ready);
        let (start, _) = consumer.run(SimTime::from_millis(2.0));
        // The dependent work cannot start before the producer finished.
        assert_eq!(start, ready.time());
        assert!((consumer.now().as_millis() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn wait_on_past_event_is_free() {
        let t = topo();
        let mut a = Stream::new(&t, DeviceId::Gpu(1));
        let mut b = Stream::new(&t, DeviceId::Gpu(1));
        a.run(SimTime::from_millis(1.0));
        let early = a.record();
        b.run(SimTime::from_millis(9.0));
        b.wait(early);
        assert!((b.now().as_millis() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn event_elapsed() {
        let t = topo();
        let mut s = Stream::new(&t, DeviceId::Gpu(0));
        let e0 = s.record();
        s.run(SimTime::from_millis(3.0));
        let e1 = s.record();
        assert!((e1.elapsed_since(&e0).as_millis() - 3.0).abs() < 1e-9);
        assert_eq!(e1.device(), DeviceId::Gpu(0));
    }

    #[test]
    #[should_panic(expected = "earlier than")]
    fn elapsed_since_later_event_panics() {
        let t = topo();
        let mut s = Stream::new(&t, DeviceId::Gpu(0));
        let e0 = s.record();
        s.run(SimTime::from_millis(3.0));
        let e1 = s.record();
        let _ = e0.elapsed_since(&e1);
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn stream_on_phantom_gpu_rejected() {
        let t = topo();
        Stream::new(&t, DeviceId::Gpu(4));
    }

    #[test]
    fn cpu_stream_is_always_valid() {
        let t = topo();
        let s = Stream::new(&t, DeviceId::Cpu);
        assert_eq!(s.device(), DeviceId::Cpu);
    }

    #[test]
    fn new_at_starts_at_offset() {
        let t = topo();
        let s = Stream::new_at(&t, DeviceId::Gpu(0), SimTime::from_secs(2.0));
        assert_eq!(s.now().as_secs(), 2.0);
    }

    #[test]
    fn sync_joins_streams_at_slowest() {
        let t = topo();
        let mut a = Stream::new(&t, DeviceId::Gpu(0));
        let mut b = Stream::new(&t, DeviceId::Gpu(0));
        a.run(SimTime::from_secs(1.0));
        b.run(SimTime::from_secs(3.0));
        let joined = sync(&mut [&mut a, &mut b]);
        assert_eq!(joined.as_secs(), 3.0);
        assert_eq!(a.now().as_secs(), 3.0);
        assert_eq!(b.now().as_secs(), 3.0);
        assert_eq!(sync(&mut []), SimTime::ZERO);
    }
}
