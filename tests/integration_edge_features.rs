//! Edge features in distributed shared memory (§III-B stores "node or
//! edge features"): per-edge data is co-located with the edge list, sampled
//! edges carry their store slots, and an edge-weighted GCN layer consumes
//! gathered edge weights through the weighted g-SpMM.

use std::collections::HashMap;

use wg_graph::{gen, MultiGpuGraph, NodeId};
use wg_mem::gather::global_gather;
use wg_sample::{sample_minibatch, GraphAccess, MultiGpuAccess, SamplerConfig};
use wg_sim::cost::AccessMode;
use wg_sim::Machine;
use wg_tensor::sparse::{spmm, Agg, BlockCsr};
use wg_tensor::Matrix;

struct Setup {
    machine: Machine,
    store: MultiGpuGraph,
    graph: wg_graph::Csr,
    edge_weights: Vec<f32>,
    features: Vec<f32>,
}

fn setup() -> Setup {
    let graph = gen::erdos_renyi(300, 10.0, 17);
    let feature_dim = 4;
    let features: Vec<f32> = (0..300 * feature_dim)
        .map(|i| (i as f32 * 0.01).cos())
        .collect();
    // One weight per stored (directed) edge, in CSR order.
    let edge_weights: Vec<f32> = (0..graph.num_edges())
        .map(|e| 0.1 + (e % 7) as f32 * 0.3)
        .collect();
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build_full(
        machine.cost(),
        8,
        &graph,
        &features,
        feature_dim,
        Some(&edge_weights),
        1,
        &machine.memory(),
        AccessMode::PeerAccess,
    )
    .unwrap();
    Setup {
        machine,
        store,
        graph,
        edge_weights,
        features,
    }
}

/// CSR-order weight of the edge (v, k-th neighbor).
fn host_weight(s: &Setup, v: NodeId, k: usize) -> f32 {
    s.edge_weights[s.graph.offsets()[v as usize] as usize + k]
}

#[test]
fn edge_features_roundtrip_through_the_store() {
    let s = setup();
    let ef = s.store.edge_features().expect("store has edge features");
    assert_eq!(s.store.edge_feature_dim(), 1);
    // Every node's every edge slot holds the CSR-order weight.
    for v in (0..300u64).step_by(13) {
        let g = s.store.partition().global_id(v);
        let base = s.store.edge_slot_base(g);
        for k in 0..s.graph.degree(v) {
            let mut w = [0.0f32];
            ef.read_row(base as usize + k, &mut w);
            // The DSM neighbor order equals CSR order, so slot k matches
            // CSR edge k.
            assert_eq!(w[0], host_weight(&s, v, k), "edge ({v},{k})");
        }
    }
}

#[test]
fn sampled_edge_ids_address_the_right_weights() {
    let s = setup();
    let access = MultiGpuAccess::new(&s.store);
    let batch: Vec<u64> = (0..64u64).map(|v| access.handle_of(v)).collect();
    let cfg = SamplerConfig {
        fanouts: vec![6],
        seed: 23,
    };
    let (mb, _) = sample_minibatch(&access, &batch, &cfg, 0, 0);
    let b = &mb.blocks[0];
    assert_eq!(b.edge_ids.len(), b.indices.len());

    // Gather the sampled edges' weights from the DSM in one kernel.
    let rows: Vec<usize> = b.edge_ids.iter().map(|&e| e as usize).collect();
    let mut gathered = vec![0.0f32; rows.len()];
    let spec = s.machine.spec(wg_sim::DeviceId::Gpu(0));
    global_gather(
        s.store.edge_features().unwrap(),
        &rows,
        &mut gathered,
        0,
        s.machine.cost(),
        spec,
    );

    // Cross-check every sampled edge against the host CSR: the gathered
    // weight must connect dst to exactly the sampled neighbor.
    for (i, &dst_handle) in batch.iter().enumerate() {
        let v = access.stable_id(dst_handle);
        // Map of neighbor -> multiset of weights in CSR order.
        let mut by_neighbor: HashMap<u64, Vec<f32>> = HashMap::new();
        for (k, &t) in s.graph.neighbors(v).iter().enumerate() {
            by_neighbor
                .entry(t)
                .or_default()
                .push(host_weight(&s, v, k));
        }
        for (e, &w) in gathered
            .iter()
            .enumerate()
            .take(b.offsets[i + 1] as usize)
            .skip(b.offsets[i] as usize)
        {
            let sampled_neighbor = access.stable_id(mb.frontiers[1][b.indices[e] as usize]);
            let candidates = by_neighbor
                .get(&sampled_neighbor)
                .unwrap_or_else(|| panic!("{sampled_neighbor} is not a neighbor of {v}"));
            assert!(
                candidates.contains(&w),
                "weight {w} is not one of {candidates:?} for edge {v}->{sampled_neighbor}"
            );
        }
    }
}

#[test]
fn edge_weighted_gcn_layer_over_sampled_block() {
    // End to end: sample → gather node features + edge weights → weighted
    // g-SpMM, checked against a dense host-side reference.
    let s = setup();
    let access = MultiGpuAccess::new(&s.store);
    let batch: Vec<u64> = (100..140u64).map(|v| access.handle_of(v)).collect();
    let cfg = SamplerConfig {
        fanouts: vec![5],
        seed: 31,
    };
    let (mb, _) = sample_minibatch(&access, &batch, &cfg, 1, 0);
    let b = &mb.blocks[0];
    let spec = s.machine.spec(wg_sim::DeviceId::Gpu(0));

    // Node features of the source space.
    let feat_dim = 4;
    let rows: Vec<usize> = mb
        .input_nodes()
        .iter()
        .map(|&h| {
            s.store
                .feature_row_of_global(wg_graph::GlobalId::from_raw(h))
        })
        .collect();
    let mut x = vec![0.0f32; rows.len() * feat_dim];
    global_gather(s.store.features(), &rows, &mut x, 0, s.machine.cost(), spec);
    let x = Matrix::from_vec(rows.len(), feat_dim, x);

    // Edge weights of the sampled edges.
    let erows: Vec<usize> = b.edge_ids.iter().map(|&e| e as usize).collect();
    let mut w = vec![0.0f32; erows.len()];
    global_gather(
        s.store.edge_features().unwrap(),
        &erows,
        &mut w,
        0,
        s.machine.cost(),
        spec,
    );
    let w = Matrix::from_vec(erows.len(), 1, w);

    let block = BlockCsr {
        num_dst: b.num_dst,
        num_src: b.num_src,
        offsets: b.offsets.clone(),
        indices: b.indices.clone(),
        dup_count: b.dup_count.clone(),
    };
    let out = spmm(&block, &x, Some(&w), 1, Agg::Sum);

    // Dense reference from host-side data.
    for (i, &dst_handle) in batch.iter().enumerate() {
        let mut expect = vec![0.0f32; feat_dim];
        for e in b.offsets[i] as usize..b.offsets[i + 1] as usize {
            let src = access.stable_id(mb.frontiers[1][b.indices[e] as usize]) as usize;
            for (j, ex) in expect.iter_mut().enumerate() {
                *ex += w.get(e, 0) * s.features[src * feat_dim + j];
            }
        }
        for (j, &ex) in expect.iter().enumerate() {
            assert!(
                (out.get(i, j) - ex).abs() < 1e-4,
                "dst {dst_handle} ({i},{j}): {} vs {ex}",
                out.get(i, j)
            );
        }
    }
}
