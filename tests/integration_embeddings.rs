//! Joint GNN + trainable-embedding training over the distributed shared
//! memory (the featureless-graph workflow of `examples/learnable_embeddings`).

use std::sync::Arc;

use wg_autograd::{Adam, NodeId, Optimizer, Tape};
use wg_gnn::{GnnConfig, GnnModel, ModelKind};
use wg_graph::{gen, GlobalId, MultiGpuGraph};
use wg_mem::EmbeddingTable;
use wg_sample::{sample_minibatch, GraphAccess, MultiGpuAccess, SamplerConfig};
use wg_sim::Machine;
use wg_tensor::ops::softmax_cross_entropy;
use wg_tensor::Matrix;
use wholegraph::convert::minibatch_blocks;

struct Setup {
    machine: Machine,
    store: MultiGpuGraph,
    labels: Vec<u32>,
}

fn setup() -> Setup {
    let (graph, labels) = gen::sbm(800, 4, 20.0, 0.9, 11);
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(machine.cost(), 8, &graph, &[], 0, &machine.memory()).unwrap();
    Setup {
        machine,
        store,
        labels,
    }
}

#[test]
fn embeddings_plus_gnn_learn_a_featureless_graph() {
    let s = setup();
    let emb_dim = 16;
    let table = Arc::new(EmbeddingTable::new(
        s.machine.cost(),
        8,
        s.store.partition().padded_rows(),
        emb_dim,
        3,
    ));
    let cfg = GnnConfig {
        kind: ModelKind::GraphSage,
        in_dim: emb_dim,
        hidden: 16,
        num_classes: 4,
        num_layers: 2,
        heads: 2,
        dropout: 0.0,
    };
    let mut model = GnnModel::new(cfg, 3);
    let mut opt = Adam::new(5e-3);
    let sampler = SamplerConfig {
        fanouts: vec![8, 8],
        seed: 3,
    };
    let access = MultiGpuAccess::new(&s.store);
    let spec = s.machine.spec(wg_sim::DeviceId::Gpu(0));

    let run_batch = |model: &mut GnnModel,
                     opt: &mut Adam,
                     table: &EmbeddingTable,
                     epoch: u64,
                     update: bool|
     -> f32 {
        let batch: Vec<u64> = (0..128u64).map(|v| access.handle_of(v)).collect();
        let (mb, _) = sample_minibatch(&access, &batch, &sampler, epoch, 0);
        let rows: Vec<usize> = mb
            .input_nodes()
            .iter()
            .map(|&h| s.store.feature_row_of_global(GlobalId::from_raw(h)))
            .collect();
        let mut feats = vec![0.0f32; rows.len() * emb_dim];
        table.gather(&rows, &mut feats, 0, s.machine.cost(), spec);
        let blocks = minibatch_blocks(&mb);
        let mut tape = Tape::new();
        let x = Matrix::from_vec(rows.len(), emb_dim, feats);
        let out = model.forward(&mut tape, &blocks, x, update, epoch);
        let labels: Vec<u32> = (0..128usize).map(|v| s.labels[v]).collect();
        let (loss, grad) = softmax_cross_entropy(tape.value(out), &labels);
        if update {
            model.params.zero_grads();
            tape.backward(out, grad, &mut model.params);
            opt.step(&mut model.params);
            let emb_grad = tape
                .grad(NodeId::first())
                .expect("input embeddings must receive a gradient");
            assert_eq!(emb_grad.rows(), rows.len());
            table.apply_sparse_adagrad(&rows, emb_grad.data(), 0.1, 1e-8, s.machine.cost(), spec);
        }
        loss
    };

    let loss0 = run_batch(&mut model, &mut opt, &table, 0, false);
    for epoch in 0..20 {
        run_batch(&mut model, &mut opt, &table, epoch, true);
    }
    let loss1 = run_batch(&mut model, &mut opt, &table, 99, false);
    assert!(
        loss1 < 0.5 * loss0,
        "joint training failed to learn: {loss0} -> {loss1}"
    );
}

#[test]
fn embedding_gradients_reach_only_touched_rows() {
    let s = setup();
    let emb_dim = 8;
    let table = EmbeddingTable::new(
        s.machine.cost(),
        8,
        s.store.partition().padded_rows(),
        emb_dim,
        5,
    );
    let spec = s.machine.spec(wg_sim::DeviceId::Gpu(0));
    // Snapshot two rows, update one of them, verify the other is intact.
    let touched = vec![3usize];
    let untouched = vec![900usize.min(table.rows() - 1)];
    let read = |rows: &[usize]| {
        let mut o = vec![0.0f32; rows.len() * emb_dim];
        table.gather(rows, &mut o, 0, s.machine.cost(), spec);
        o
    };
    let before = read(&untouched);
    table.apply_sparse_adagrad(
        &touched,
        &vec![1.0; emb_dim],
        0.5,
        1e-8,
        s.machine.cost(),
        spec,
    );
    assert_eq!(read(&untouched), before, "untouched row changed");
    assert_ne!(read(&touched), vec![0.0; emb_dim]);
}
