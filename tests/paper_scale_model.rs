//! Analytic validation at FULL paper scale.
//!
//! The empirical harnesses run on scaled stand-ins; this test evaluates
//! the cost model alone at the paper's true dataset sizes (ogbn-products:
//! 2.4 M nodes, batch 512, fanout 30,30,30, 384 iterations/epoch, 8 GPUs)
//! and checks that the resulting epoch times land in the bands Table V
//! reports. This closes the loop between calibration (DESIGN.md §4) and
//! the published numbers without needing 100 GB of RAM.

use wg_gnn::cost::{train_step_time, BlockShape};
use wg_gnn::{GnnConfig, LayerProvider, ModelKind};
use wg_sim::collective::allreduce_intra_node;
use wg_sim::{CostModel, DeviceSpec, SimTime};

/// Paper-scale per-batch shapes for ogbn-products (batch 512, fanout 30):
/// frontier sizes estimated with moderate dedup on a 2.4 M-node graph.
fn products_shapes() -> Vec<BlockShape> {
    vec![
        BlockShape {
            num_dst: 512,
            num_src: 14_500,
            num_edges: 15_360,
        },
        BlockShape {
            num_dst: 14_500,
            num_src: 350_000,
            num_edges: 435_000,
        },
        BlockShape {
            num_dst: 350_000,
            num_src: 1_400_000,
            num_edges: 10_500_000,
        },
    ]
}

struct PaperScale {
    model: CostModel,
    spec: DeviceSpec,
    shapes: Vec<BlockShape>,
    feat_dim: usize,
    iters: usize,
    gpus: u32,
}

impl PaperScale {
    fn products() -> Self {
        PaperScale {
            model: CostModel::dgx_a100(),
            spec: DeviceSpec::a100_40gb(),
            shapes: products_shapes(),
            feat_dim: 100,
            iters: 384, // ~196k train nodes / 512
            gpus: 8,
        }
    }

    fn edges_sampled(&self) -> u64 {
        self.shapes.iter().map(|s| s.num_edges as u64).sum()
    }

    fn gathered_rows(&self) -> u64 {
        self.shapes.last().unwrap().num_src as u64
    }

    fn waves(&self) -> f64 {
        (self.iters as f64 / self.gpus as f64).ceil()
    }

    /// WholeGraph epoch: GPU sampling + P2P gather + native train, per
    /// wave.
    fn wholegraph_epoch(&self, kind: ModelKind) -> SimTime {
        let m = &self.model;
        let sample = SimTime::from_secs(
            self.edges_sampled() as f64 / m.gpu_sample_edges_per_s
                + (self.edges_sampled() + 400_000) as f64 / m.gpu_unique_keys_per_s
                + 6.0 * self.spec.kernel_launch_overhead_s,
        );
        let gather = m.dsm_gather_time(self.gathered_rows(), self.feat_dim * 4, &self.spec);
        let cfg = GnnConfig::paper(kind, self.feat_dim, 47);
        let train = train_step_time(
            &cfg,
            &self.shapes,
            LayerProvider::WholeGraphNative,
            m,
            &self.spec,
            500_000,
        );
        let comm = allreduce_intra_node(m, 2_000_000, self.gpus);
        (sample + gather + train + comm) * self.waves()
    }

    /// Host-pipeline epoch: CPU sampling/gather are aggregate resources
    /// (×gpus per wave), PCIe shares uplinks, third-party layers train.
    fn host_epoch(&self, kind: ModelKind, pyg: bool) -> SimTime {
        let m = &self.model;
        let rate = if pyg {
            m.pyg_sample_edges_per_s
        } else {
            m.cpu_sample_edges_per_s
        };
        let sample = SimTime::from_secs(self.edges_sampled() as f64 / rate) * self.gpus as f64;
        let row_bytes = self.feat_dim * 4;
        let cpu_gather = m.host_gather_time(self.gathered_rows(), row_bytes) * self.gpus as f64;
        let bytes = self.gathered_rows() * row_bytes as u64;
        let path = m
            .topology
            .path(wg_sim::DeviceId::Cpu, wg_sim::DeviceId::Gpu(0), self.gpus);
        let pcie = m.transfer_time(bytes, path);
        let cfg = GnnConfig::paper(kind, self.feat_dim, 47);
        let provider = if pyg {
            LayerProvider::PygLayers
        } else {
            LayerProvider::DglLayers
        };
        let train = train_step_time(&cfg, &self.shapes, provider, m, &self.spec, 500_000);
        let comm = allreduce_intra_node(m, 2_000_000, self.gpus);
        (sample + cpu_gather + pcie + train + comm) * self.waves()
    }
}

#[test]
fn products_epoch_magnitudes_match_table5() {
    let p = PaperScale::products();
    // Paper Table V, ogbn-products GraphSage: PyG 228.96 s, DGL 30.8 s,
    // WholeGraph 0.99 s. Require each model estimate within ~2.5x.
    let wg = p.wholegraph_epoch(ModelKind::GraphSage).as_secs();
    let dgl = p.host_epoch(ModelKind::GraphSage, false).as_secs();
    let pyg = p.host_epoch(ModelKind::GraphSage, true).as_secs();
    assert!(
        wg > 0.99 / 2.5 && wg < 0.99 * 2.5,
        "WholeGraph epoch {wg:.2} s vs paper 0.99 s"
    );
    assert!(
        dgl > 30.8 / 2.5 && dgl < 30.8 * 2.5,
        "DGL epoch {dgl:.2} s vs paper 30.8 s"
    );
    assert!(
        pyg > 228.96 / 2.5 && pyg < 228.96 * 2.5,
        "PyG epoch {pyg:.2} s vs paper 228.96 s"
    );
}

#[test]
fn products_speedups_land_in_paper_bands() {
    let p = PaperScale::products();
    // Paper speedups (GraphSage, products): 231.27x vs PyG, 31.11x vs DGL.
    let wg = p.wholegraph_epoch(ModelKind::GraphSage);
    let dgl = p.host_epoch(ModelKind::GraphSage, false);
    let pyg = p.host_epoch(ModelKind::GraphSage, true);
    let s_dgl = dgl / wg;
    let s_pyg = pyg / wg;
    assert!(
        s_dgl > 15.0 && s_dgl < 60.0,
        "vs DGL {s_dgl:.1}x (paper 31.1x)"
    );
    assert!(
        s_pyg > 100.0 && s_pyg < 450.0,
        "vs PyG {s_pyg:.1}x (paper 231.3x)"
    );
}

#[test]
fn gat_dilutes_the_speedup_at_paper_scale() {
    // Paper: GAT's speedup vs DGL drops from ~31x (GraphSage) to ~8.9x on
    // products. At full scale our model must show the same strong
    // dilution (>2x reduction).
    let p = PaperScale::products();
    let sage = p.host_epoch(ModelKind::GraphSage, false) / p.wholegraph_epoch(ModelKind::GraphSage);
    let gat = p.host_epoch(ModelKind::Gat, false) / p.wholegraph_epoch(ModelKind::Gat);
    assert!(
        gat < sage / 1.8,
        "GAT {gat:.1}x vs GraphSage {sage:.1}x — insufficient dilution"
    );
    assert!(gat > 4.0, "GAT speedup {gat:.1}x collapsed entirely");
}

#[test]
fn input_phases_dominate_host_pipelines_at_paper_scale() {
    // Figure 9's full-scale shape: ≥80% of a DGL epoch is sampling+gather;
    // ≤25% of a WholeGraph epoch is.
    let p = PaperScale::products();
    let m = &p.model;
    let dgl_sample = SimTime::from_secs(p.edges_sampled() as f64 / m.cpu_sample_edges_per_s) * 8.0;
    let dgl_gather = m.host_gather_time(p.gathered_rows(), 400) * 8.0;
    let dgl_total = p.host_epoch(ModelKind::GraphSage, false) / p.waves();
    let share = (dgl_sample + dgl_gather) / dgl_total;
    assert!(share > 0.8, "DGL input share {share:.2}");

    let wg_sample = SimTime::from_secs(p.edges_sampled() as f64 / m.gpu_sample_edges_per_s);
    let wg_gather = m.dsm_gather_time(p.gathered_rows(), 400, &p.spec);
    let wg_total = p.wholegraph_epoch(ModelKind::GraphSage) / p.waves();
    let share = (wg_sample + wg_gather) / wg_total;
    assert!(share < 0.35, "WholeGraph input share {share:.2}");
}

#[test]
fn paper_scale_gather_volume_is_nvlink_friendly() {
    // Sanity: a products batch gathers ~560 MB of features; at saturated
    // AlgoBW (~263 GB/s) that is ~2 ms — small next to ~20 ms of train
    // compute, which is why WholeGraph's GPUs stay >95% busy.
    let p = PaperScale::products();
    let gather = p.model.dsm_gather_time(p.gathered_rows(), 400, &p.spec);
    assert!(gather.as_millis() < 5.0, "gather {gather}");
    let cfg = GnnConfig::paper(ModelKind::GraphSage, 100, 47);
    let train = train_step_time(
        &cfg,
        &p.shapes,
        LayerProvider::WholeGraphNative,
        &p.model,
        &p.spec,
        500_000,
    );
    assert!(train / gather > 4.0, "train {train} vs gather {gather}");
}
