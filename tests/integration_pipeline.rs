//! End-to-end integration: dataset → multi-GPU store → sampling →
//! gather → training, across all frameworks and models.

use std::sync::Arc;

use wholegraph::prelude::*;

fn dataset() -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1200,
        21,
    ))
}

#[test]
fn every_framework_model_combination_trains() {
    for fw in Framework::ALL {
        for model in ModelKind::ALL {
            let machine = Machine::new(MachineConfig::dgx_like(4));
            let cfg = PipelineConfig::tiny(fw, model).with_seed(21);
            let mut pipe = Pipeline::new(machine, dataset(), cfg).unwrap();
            let r = pipe.train_epoch(0);
            assert!(r.loss.is_finite() && r.loss > 0.0, "{fw:?}/{model:?}");
            assert!(r.epoch_time > SimTime::ZERO);
            assert!(
                r.train_accuracy >= 0.0 && r.train_accuracy <= 1.0,
                "{fw:?}/{model:?}: accuracy {}",
                r.train_accuracy
            );
        }
    }
}

#[test]
fn wholegraph_learns_and_beats_random_guessing() {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(2);
    let mut pipe = Pipeline::new(machine, dataset(), cfg).unwrap();
    let out = Trainer::new(TrainerConfig {
        epochs: 6,
        eval_every: 3,
        patience: None,
    })
    .run(&mut pipe);
    let classes = pipe.dataset().num_classes as f64;
    assert!(
        out.val_accuracy > 3.0 / classes,
        "val accuracy {} barely beats random",
        out.val_accuracy
    );
    // The validation curve is recorded at the requested cadence.
    assert_eq!(out.val_curve.len(), 2);
}

#[test]
fn epoch_speedup_ordering_holds_at_paper_shape() {
    // Table V's qualitative result: WholeGraph < DGL < PyG epoch time,
    // with meaningful gaps. Storage pinned off: the speedup ratios are
    // about in-memory DSM vs host gathers and must not inherit a CI
    // matrix leg's `WG_STORAGE_BUDGET_ROWS` (the tier slows WholeGraph
    // only — the host baselines never build it).
    let mut times = Vec::new();
    for fw in [Framework::WholeGraph, Framework::Dgl, Framework::Pyg] {
        let d = Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            300,
            8,
        ));
        let machine = Machine::dgx_a100();
        let cfg = PipelineConfig {
            batch_size: 256,
            fanouts: vec![15, 15],
            num_layers: 2,
            hidden: 64,
            ..PipelineConfig::tiny(fw, ModelKind::GraphSage).with_storage(0)
        };
        let mut pipe = Pipeline::new(machine, d, cfg).unwrap();
        let r = pipe.measure_epoch(0, 2);
        times.push((fw, r.epoch_time));
    }
    let (wg, dgl, pyg) = (times[0].1, times[1].1, times[2].1);
    assert!(dgl / wg > 2.0, "DGL/WG speedup only {:.2}", dgl / wg);
    assert!(pyg / dgl > 2.0, "PyG/DGL ratio only {:.2}", pyg / dgl);
}

#[test]
fn setup_cost_is_amortized() {
    // §III-B: DSM setup is tens-to-hundreds of ms, paid once; it must be
    // far below even a single tiny epoch... of the *baselines*, and within
    // an order of magnitude of WholeGraph's own epoch at this scale.
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn);
    let mut pipe = Pipeline::new(machine, dataset(), cfg).unwrap();
    let setup = pipe.setup_time();
    assert!(
        setup.as_millis() > 0.1 && setup.as_millis() < 500.0,
        "setup {setup}"
    );
    let _ = pipe.train_epoch(0);
}

#[test]
fn graph_too_large_for_gpu_memory_is_a_clean_error() {
    // Failure injection: shrink the simulated GPUs until the feature
    // store cannot fit; Pipeline::new must surface OutOfMemory rather
    // than panic or truncate.
    let mut config = MachineConfig::dgx_like(4);
    config.gpu_spec.memory_capacity = 64 * 1024; // 64 KiB "GPUs"
    let machine = Machine::new(config);
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn);
    let Err(err) = Pipeline::new(machine, dataset(), cfg) else {
        panic!("64 KiB GPUs should not fit the store");
    };
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "unexpected error: {msg}");
}

#[test]
fn saved_dataset_trains_identically_to_generated() {
    // IO round-trip feeding the full pipeline: save → load → train must
    // match training on the original object exactly.
    use wg_graph::io::{load_dataset, save_dataset};
    let d = dataset();
    let mut path = std::env::temp_dir();
    path.push(format!("wg-integration-{}.wgds", std::process::id()));
    save_dataset(&d, &path).unwrap();
    let loaded = Arc::new(load_dataset(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let run = |data: Arc<SyntheticDataset>| {
        let machine = Machine::new(MachineConfig::dgx_like(4));
        let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn).with_seed(9);
        let mut pipe = Pipeline::new(machine, data, cfg).unwrap();
        pipe.train_epoch(0).loss
    };
    let a = run(d);
    let b = run(loaded);
    assert!(
        (a - b).abs() < 1e-3,
        "losses differ after IO roundtrip: {a} vs {b}"
    );
}

#[test]
fn memory_accounting_covers_all_phases_after_training() {
    use wholegraph::memstats::{memory_report, register_training_memory, training_bytes_per_gpu};
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage);
    let mut pipe = Pipeline::new(machine, dataset(), cfg).unwrap();
    let batch: Vec<_> = pipe.dataset().train[..32].to_vec();
    let it = pipe.run_iteration(0, 0, &batch, true);
    let bytes = training_bytes_per_gpu(&pipe.model, &it.shapes, pipe.dataset().feature_dim);
    register_training_memory(pipe.machine(), bytes).unwrap();
    let rows = memory_report(pipe.machine());
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.total_bytes > 0));
}
