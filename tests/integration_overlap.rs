//! Serial vs overlapped executor equivalence, end to end.
//!
//! The stage/executor split guarantees that scheduling is timing-only:
//! both executors run the same iterations with the same seeds, so every
//! numeric output — losses, accuracy, trained parameters, predictions —
//! must be *bit-identical*, while the overlapped schedule's epoch time is
//! never longer and is strictly shorter whenever the epoch has several
//! waves with nonzero input and compute phases.

use std::sync::Arc;

use wg_graph::NodeId;
use wholegraph::pipeline::ExecMode;
use wholegraph::prelude::*;

fn dataset() -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1500,
        5,
    ))
}

/// Train one epoch under `exec` and return the report plus predictions
/// over a fixed node set (from the post-epoch parameters).
fn epoch_under(
    fw: Framework,
    model: ModelKind,
    exec: ExecMode,
    data: &Arc<SyntheticDataset>,
) -> (EpochReport, Vec<u32>, usize) {
    // 2 GPUs + a small batch give the tiny train split several waves, so
    // the overlapped schedule has something to overlap.
    let machine = Machine::new(MachineConfig::dgx_like(2));
    let mut cfg = PipelineConfig::tiny(fw, model)
        .with_seed(23)
        .with_exec(exec);
    cfg.batch_size = 32;
    let mut pipe = Pipeline::new(machine, data.clone(), cfg).unwrap();
    let waves = pipe
        .iters_per_epoch()
        .div_ceil(pipe.machine().num_gpus() as usize);
    let report = pipe.train_epoch(0);
    let nodes: Vec<NodeId> = (0..64u64).collect();
    let (preds, _) = pipe.infer(&nodes);
    (report, preds, waves)
}

#[test]
fn executors_agree_numerically_for_every_framework_and_model() {
    let data = dataset();
    for fw in Framework::ALL {
        for model in ModelKind::ALL {
            let (serial, preds_s, waves) = epoch_under(fw, model, ExecMode::Serial, &data);
            let (overlap, preds_o, _) = epoch_under(fw, model, ExecMode::Overlapped, &data);
            let tag = format!("{fw:?}/{model:?}");

            // Numerics: bit-identical across executors.
            assert_eq!(serial.loss.to_bits(), overlap.loss.to_bits(), "{tag}: loss");
            assert_eq!(
                serial.train_accuracy, overlap.train_accuracy,
                "{tag}: accuracy"
            );
            assert_eq!(preds_s, preds_o, "{tag}: predictions");

            // Phase totals are the same work, differently scheduled.
            assert_eq!(serial.sample_time, overlap.sample_time, "{tag}: sample");
            assert_eq!(serial.gather_time, overlap.gather_time, "{tag}: gather");
            assert_eq!(serial.train_time, overlap.train_time, "{tag}: train");
            assert_eq!(serial.comm_time, overlap.comm_time, "{tag}: comm");

            // Timing: overlap never loses, and with several waves of
            // nonzero input + compute it must strictly win.
            assert!(
                overlap.epoch_time <= serial.epoch_time,
                "{tag}: overlapped {} > serial {}",
                overlap.epoch_time,
                serial.epoch_time
            );
            assert!(
                waves >= 2,
                "{tag}: need >= 2 waves to exercise overlap, got {waves}"
            );
            assert!(
                overlap.epoch_time < serial.epoch_time,
                "{tag}: overlapped {} !< serial {}",
                overlap.epoch_time,
                serial.epoch_time
            );
        }
    }
}

#[test]
fn overlap_win_is_largest_for_host_pipelines() {
    // DGL/PyG input phases dominate their epochs (Figure 9), so hiding
    // them under training shrinks the epoch far more than for WholeGraph,
    // whose input phases are already small.
    let data = dataset();
    let saving = |fw: Framework| -> f64 {
        let (serial, _, _) = epoch_under(fw, ModelKind::GraphSage, ExecMode::Serial, &data);
        let (overlap, _, _) = epoch_under(fw, ModelKind::GraphSage, ExecMode::Overlapped, &data);
        1.0 - overlap.epoch_time / serial.epoch_time
    };
    let wg = saving(Framework::WholeGraph);
    let dgl = saving(Framework::Dgl);
    let pyg = saving(Framework::Pyg);
    assert!(dgl > wg, "DGL saving {dgl:.3} !> WholeGraph saving {wg:.3}");
    assert!(pyg > wg, "PyG saving {pyg:.3} !> WholeGraph saving {wg:.3}");
}

#[test]
fn overlapped_occupancy_shows_input_hidden_under_training() {
    // Under the overlapped executor the per-phase occupancy totals can
    // exceed the epoch span (phases co-occupy time on two streams), while
    // busy+idle still partition the span exactly.
    let data = dataset();
    let (r, _, _) = epoch_under(
        Framework::Dgl,
        ModelKind::GraphSage,
        ExecMode::Overlapped,
        &data,
    );
    let occ = r.occupancy;
    let span = (occ.busy + occ.idle).as_secs();
    assert!(
        (span - r.epoch_time.as_secs()).abs() < 1e-9,
        "span {span} vs epoch {}",
        r.epoch_time
    );
    let phase_sum =
        occ.sampling.total() + occ.gather.total() + occ.training.total() + occ.comm.total();
    assert!(
        phase_sum.as_secs() > r.epoch_time.as_secs() + 1e-12,
        "phase totals {} should exceed the overlapped epoch span {}",
        phase_sum,
        r.epoch_time
    );
}
