//! The work-stealing pool must be invisible to the numerics: a training
//! epoch run on N worker threads produces bit-identical losses,
//! predictions, and simulated phase times to the same epoch run strictly
//! sequentially. The rayon shim guarantees this by deriving its split
//! tree from input lengths alone and merging reductions in chunk order;
//! `rayon::run_sequential` executes that exact tree inline, so it is the
//! reference schedule the parallel runs are compared against.

use std::sync::Arc;

use wholegraph::prelude::*;

/// Everything observable about one epoch, captured as raw bits so the
/// comparison is exact (no epsilon, no rounding).
#[derive(PartialEq, Eq, Debug)]
struct EpochFingerprint {
    loss: u32,
    train_accuracy: u64,
    epoch_time: u64,
    sample_time: u64,
    gather_time: u64,
    train_time: u64,
    comm_time: u64,
    predictions: Vec<u32>,
}

fn run_epoch(fw: Framework) -> EpochFingerprint {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        900,
        17,
    ));
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(fw, ModelKind::GraphSage).with_seed(33);
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
    let r = pipe.train_epoch(0);
    let probe: Vec<_> = pipe.dataset().val.iter().take(64).copied().collect();
    let (predictions, _) = pipe.infer(&probe);
    EpochFingerprint {
        loss: r.loss.to_bits(),
        train_accuracy: r.train_accuracy.to_bits(),
        epoch_time: r.epoch_time.as_secs().to_bits(),
        sample_time: r.sample_time.as_secs().to_bits(),
        gather_time: r.gather_time.as_secs().to_bits(),
        train_time: r.train_time.as_secs().to_bits(),
        comm_time: r.comm_time.as_secs().to_bits(),
        predictions,
    }
}

/// One epoch per framework, sequential reference vs. two pool runs.
/// `init_threads(8)` is a request — `WG_THREADS`/`RAYON_NUM_THREADS`
/// win if set, so the tier-1 `WG_THREADS=1` pass exercises the same
/// assertions with a degenerate (but still distinct) schedule.
#[test]
fn training_epoch_is_bit_identical_at_any_thread_count() {
    rayon::init_threads(8);
    for fw in Framework::ALL {
        let sequential = rayon::run_sequential(|| run_epoch(fw));
        for round in 0..2 {
            let parallel = run_epoch(fw);
            assert_eq!(
                sequential,
                parallel,
                "{fw:?} diverged from the sequential schedule \
                 (round {round}, {} threads)",
                rayon::current_num_threads()
            );
        }
    }
}

/// The simulated device times come out of the same kernels, so they are
/// covered above; this pins the *accounting identities* that must hold
/// regardless of host schedule, catching a pool bug that corrupts
/// report aggregation without touching the floats.
#[test]
fn epoch_report_invariants_hold_under_parallel_execution() {
    rayon::init_threads(8);
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        600,
        9,
    ));
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn).with_seed(5);
    let mut pipe = Pipeline::new(machine, dataset, cfg).unwrap();
    let r = pipe.train_epoch(0);
    assert!(r.loss.is_finite() && r.loss > 0.0);
    assert!(r.executed_iterations <= r.iterations);
    assert!(r.epoch_time > SimTime::ZERO);
    let phase_sum = r.sample_time + r.gather_time + r.train_time + r.comm_time;
    assert!(
        phase_sum.as_secs() > 0.0,
        "phase accounting vanished: {phase_sum:?}"
    );
}
