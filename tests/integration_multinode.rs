//! Multi-node data-parallel integration (§III-D / Figure 13) plus
//! gradient-averaging semantics.

use std::sync::Arc;

use wholegraph::multinode::scaling_sweep;
use wholegraph::prelude::*;

fn pipeline() -> Pipeline {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnPapers100M,
        2000,
        31,
    ));
    let machine = Machine::dgx_a100();
    let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(31);
    cfg.batch_size = 16;
    Pipeline::new(machine, dataset, cfg).unwrap()
}

#[test]
fn scaling_sweep_matches_figure13_shape() {
    let mut pipe = pipeline();
    let pts = scaling_sweep(&mut pipe, &[1, 2, 4, 8], 2);
    assert_eq!(pts.len(), 4);
    // Speedups grow with node count and 8-node efficiency is high.
    for w in pts.windows(2) {
        assert!(w[1].speedup > w[0].speedup);
    }
    let eff8 = pts[3].speedup / 8.0;
    assert!(eff8 > 0.55, "8-node efficiency {eff8:.2}");
    // 2-node efficiency should be nearly perfect (tiny gradients over fat
    // IB pipes).
    let eff2 = pts[1].speedup / 2.0;
    assert!(eff2 > 0.8, "2-node efficiency {eff2:.2}");
}

#[test]
fn gradient_averaging_equalizes_replicas() {
    // Two replicas with different local gradients end up identical after
    // the simulated AllReduce — the §III-D invariant ("each GPU has the
    // same GNN model parameters").
    use wg_autograd::{average_gradients, Params};
    use wg_tensor::Matrix;
    let mut a = Params::new();
    let mut b = Params::new();
    let ia = a.add("w", Matrix::zeros(2, 2));
    let ib = b.add("w", Matrix::zeros(2, 2));
    a.accumulate_grad(ia, &Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    b.accumulate_grad(ib, &Matrix::from_vec(2, 2, vec![3.0, 2.0, 1.0, 0.0]));
    average_gradients(&mut [&mut a, &mut b]);
    assert_eq!(a.grad(ia).data(), b.grad(ib).data());
    assert_eq!(a.grad(ia).data(), &[2.0, 2.0, 2.0, 2.0]);
}

#[test]
fn more_real_iterations_refine_but_do_not_flip_the_sweep() {
    let mut pipe = pipeline();
    let one = scaling_sweep(&mut pipe, &[1, 8], 1);
    let mut pipe = pipeline();
    let three = scaling_sweep(&mut pipe, &[1, 8], 3);
    // Both sweeps agree that 8 nodes is much faster than 1.
    assert!(one[1].speedup > 3.0);
    assert!(three[1].speedup > 3.0);
}
