//! Multi-node data-parallel integration (§III-D / Figure 13): the
//! executed cluster path (partitioned shards, halo exchange, gradient
//! sync) end to end, the legacy projection it replaced, and
//! gradient-averaging semantics.

use std::sync::Arc;

use wholegraph::multinode::{executed_sweep, scaling_sweep};
use wholegraph::prelude::*;

fn pipeline() -> Pipeline {
    let dataset = Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnPapers100M,
        2000,
        31,
    ));
    let machine = Machine::dgx_a100();
    let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(31);
    cfg.batch_size = 16;
    Pipeline::new(machine, dataset, cfg).unwrap()
}

#[test]
fn scaling_sweep_matches_figure13_shape() {
    let mut pipe = pipeline();
    let pts = scaling_sweep(&mut pipe, &[1, 2, 4, 8], 2);
    assert_eq!(pts.len(), 4);
    // Speedups grow with node count and 8-node efficiency is high.
    for w in pts.windows(2) {
        assert!(w[1].speedup > w[0].speedup);
    }
    let eff8 = pts[3].speedup / 8.0;
    assert!(eff8 > 0.55, "8-node efficiency {eff8:.2}");
    // 2-node efficiency should be nearly perfect (tiny gradients over fat
    // IB pipes).
    let eff2 = pts[1].speedup / 2.0;
    assert!(eff2 > 0.8, "2-node efficiency {eff2:.2}");
}

#[test]
fn gradient_averaging_equalizes_replicas() {
    // Two replicas with different local gradients end up identical after
    // the simulated AllReduce — the §III-D invariant ("each GPU has the
    // same GNN model parameters").
    use wg_autograd::{average_gradients, Params};
    use wg_tensor::Matrix;
    let mut a = Params::new();
    let mut b = Params::new();
    let ia = a.add("w", Matrix::zeros(2, 2));
    let ib = b.add("w", Matrix::zeros(2, 2));
    a.accumulate_grad(ia, &Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    b.accumulate_grad(ib, &Matrix::from_vec(2, 2, vec![3.0, 2.0, 1.0, 0.0]));
    average_gradients(&mut [&mut a, &mut b]);
    assert_eq!(a.grad(ia).data(), b.grad(ib).data());
    assert_eq!(a.grad(ia).data(), &[2.0, 2.0, 2.0, 2.0]);
}

#[test]
fn more_real_iterations_refine_but_do_not_flip_the_sweep() {
    let mut pipe = pipeline();
    let one = scaling_sweep(&mut pipe, &[1, 8], 1);
    let mut pipe = pipeline();
    let three = scaling_sweep(&mut pipe, &[1, 8], 3);
    // Both sweeps agree that 8 nodes is much faster than 1.
    assert!(one[1].speedup > 3.0);
    assert!(three[1].speedup > 3.0);
}

fn cluster_dataset() -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnPapers100M,
        2000,
        31,
    ))
}

fn cluster_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(31);
    cfg.batch_size = 16;
    cfg
}

#[test]
fn executed_single_node_epoch_is_bit_identical_to_the_pipeline() {
    // The tentpole correctness bar: the full cluster machinery at N=1 —
    // partition plan, deferred steps, gradient sync, halo accounting,
    // barrier — collapses to exactly the single-pipeline epoch, bit for
    // bit, across several epochs.
    let mut mn = MultiNode::new(
        cluster_dataset(),
        cluster_cfg(),
        MultiNodeConfig::new(1).with_gpus(4),
    )
    .unwrap();
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let mut single = Pipeline::new(machine, cluster_dataset(), cluster_cfg()).unwrap();
    for epoch in 0..3 {
        let r = mn.train_epoch(epoch);
        let s = single.train_epoch(epoch);
        assert_eq!(r.loss.to_bits(), s.loss.to_bits(), "epoch {epoch}");
        assert_eq!(r.train_accuracy, s.train_accuracy);
        assert_eq!(r.epoch_time, s.epoch_time);
        assert_eq!(r.executed_iterations, s.executed_iterations);
        assert_eq!(r.sync_bytes, 0);
        assert_eq!(r.per_node[0].halo_bytes, 0);
    }
}

#[test]
fn executed_multi_node_loss_parity_and_comm_accounting() {
    // The loss-parity configuration DESIGN.md §9 documents: ogbn-products
    // stand-in, batch 32. N nodes take ~1/N optimizer steps per epoch
    // (each step averages N shard batches), so the epoch-mean loss lands
    // near — not on — the single-node figure; 15% relative holds at this
    // scale.
    let ds = || {
        Arc::new(SyntheticDataset::generate(
            DatasetKind::OgbnProducts,
            1500,
            5,
        ))
    };
    let cfg = || {
        let mut cfg =
            PipelineConfig::tiny(Framework::WholeGraph, ModelKind::GraphSage).with_seed(11);
        cfg.batch_size = 32;
        cfg
    };
    let machine = Machine::new(MachineConfig::dgx_like(2));
    let mut single = Pipeline::new(machine, ds(), cfg()).unwrap();
    let s = single.train_epoch(0);
    for nodes in [2u32, 4] {
        let mut mn = MultiNode::new(ds(), cfg(), MultiNodeConfig::new(nodes).with_gpus(2)).unwrap();
        let r = mn.train_epoch(0);
        let rel = (r.loss - s.loss).abs() / s.loss.abs();
        assert!(rel < 0.15, "{nodes} nodes: loss {} vs {} ", r.loss, s.loss);
        // Every node paid inter-node gradient sync and halo traffic.
        assert!(r.sync_bytes > 0);
        assert!(r.sync_time > SimTime::ZERO);
        for n in &r.per_node {
            assert!(n.halo_bytes > 0, "node {} fetched no halo rows", n.node);
            let rep = n.report.expect("every shard is non-empty at this scale");
            assert!(rep.comm_time > SimTime::ZERO);
        }
        // The cluster epoch is the slowest node's epoch.
        let slowest = r
            .per_node
            .iter()
            .filter_map(|n| n.report.map(|rep| rep.epoch_time))
            .fold(SimTime::ZERO, SimTime::max);
        assert_eq!(r.epoch_time, slowest);
    }
}

#[test]
fn executed_sweep_beats_single_node_and_stays_sublinear() {
    let pts = executed_sweep(
        cluster_dataset(),
        cluster_cfg(),
        MultiNodeConfig::new(1).with_gpus(1),
        &[1, 2, 4],
    )
    .unwrap();
    assert!((pts[0].speedup - 1.0).abs() < 1e-9);
    for w in pts.windows(2) {
        assert!(w[1].epoch_time < w[0].epoch_time);
    }
    // Real execution pays halo + sync, so speedup is genuinely sublinear
    // (the projection's near-linear curve was the assumption, not the
    // measurement).
    for p in &pts[1..] {
        assert!(p.speedup > 1.0);
        assert!(p.speedup < p.nodes as f64);
    }
}

#[test]
fn compression_and_delayed_aggregation_cut_sync_traffic() {
    let run = |sync: SyncConfig| {
        let mut mn = MultiNode::new(
            cluster_dataset(),
            cluster_cfg(),
            MultiNodeConfig::new(2).with_gpus(2).with_sync(sync),
        )
        .unwrap();
        mn.train_epoch(0)
    };
    let full = run(SyncConfig::default());
    let topk = run(SyncConfig {
        compress_topk: Some(0.05),
        delayed_agg_period: 1,
    });
    let delayed = run(SyncConfig {
        compress_topk: None,
        delayed_agg_period: 4,
    });
    for r in [&topk, &delayed] {
        assert!(r.loss.is_finite() && r.loss > 0.0);
    }
    assert!(
        topk.sync_bytes < full.sync_bytes / 4,
        "top-k 5% moved {} vs full {}",
        topk.sync_bytes,
        full.sync_bytes
    );
    assert!(delayed.sync_bytes < full.sync_bytes);
    assert!(delayed.sync_time < full.sync_time);
}

#[test]
fn per_node_attribution_covers_metrics_and_the_cluster_trace() {
    // Satellite 2: the global `pipeline.gather.feature_bytes` /
    // `pipeline.allreduce.bytes` counters sum over all replicas; the
    // per-node `multinode.node<k>.*` counters attribute the same traffic
    // per machine. (The registry is process-global and the enable flags
    // affect the whole process, so the metric and trace halves share one
    // test and assert per-node presence and cross-series consistency
    // rather than exact totals.)
    wg_trace::enable_all();
    let mut mn = MultiNode::new(
        cluster_dataset(),
        cluster_cfg(),
        MultiNodeConfig::new(2).with_gpus(2),
    )
    .unwrap();
    let r = mn.train_epoch(0);
    wg_trace::disable_all();
    let snap = wg_trace::metrics::snapshot();
    let counter = |name: &str| -> f64 {
        snap.counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    let mut halo_sum = 0.0;
    for k in 0..2 {
        let gather = counter(&format!("multinode.node{k}.gather.feature_bytes"));
        let allreduce = counter(&format!("multinode.node{k}.allreduce.bytes"));
        let halo = counter(&format!("multinode.node{k}.halo.bytes"));
        assert!(gather > 0.0, "node {k} gather bytes not attributed");
        assert!(allreduce > 0.0, "node {k} allreduce bytes not attributed");
        assert!(halo > 0.0, "node {k} halo bytes not attributed");
        halo_sum += halo;
    }
    // The per-node halo counters and the report agree on this epoch's
    // traffic (this test's run is the only one touching these series).
    let report_halo: u64 = r.per_node.iter().map(|n| n.halo_bytes).sum();
    assert!(
        halo_sum >= report_halo as f64,
        "per-node halo counters {halo_sum} < report {report_halo}"
    );

    // Trace half: the merged cluster export gives every node its own
    // Chrome process, with per-phase spans for comm and compute.
    let machines = mn.machines();
    let json = wholegraph::observability::cluster_chrome_trace_json(&machines);
    for k in 0..2 {
        assert!(
            json.contains(&format!("node{k} devices (sim time)")),
            "node {k} missing its Chrome process"
        );
    }
    // Per-phase spans for comm and compute are present in the merged
    // trace (the occupancy evidence the sweep points summarize).
    assert!(json.contains("\"training\""));
    assert!(json.contains("\"comm\""));
    assert!(json.contains("\"sampling\""));
}
