//! Cross-framework equivalence: WholeGraph and the host-memory baselines
//! must compute the *same training* (the paper's Table III / Figure 7
//! accuracy-parity claim) — same seeds produce the same sampled
//! sub-graphs, the same losses (up to float summation order), and the
//! same converged accuracy.

use std::collections::HashSet;
use std::sync::Arc;

use wholegraph::prelude::*;
use wholegraph::Pipeline as P;

fn dataset(seed: u64) -> Arc<SyntheticDataset> {
    Arc::new(SyntheticDataset::generate(
        DatasetKind::OgbnProducts,
        1500,
        seed,
    ))
}

fn pipeline(fw: Framework, model: ModelKind, seed: u64) -> P {
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(fw, model).with_seed(seed);
    Pipeline::new(machine, dataset(seed), cfg).unwrap()
}

#[test]
fn identical_losses_across_all_three_frameworks() {
    for model in ModelKind::ALL {
        let mut losses = Vec::new();
        for fw in Framework::ALL {
            let mut p = pipeline(fw, model, 4);
            let batch: Vec<_> = p.dataset().train[..48].to_vec();
            let r = p.run_iteration(0, 0, &batch, false);
            losses.push((fw, r.loss));
        }
        let base = losses[0].1;
        for (fw, l) in &losses {
            assert!(
                (l - base).abs() < 2e-3 * (1.0 + base.abs()),
                "{model:?}: {fw:?} loss {l} vs {base}"
            );
        }
    }
}

#[test]
fn identical_sampled_work_across_frameworks() {
    let mut wg = pipeline(Framework::WholeGraph, ModelKind::Gcn, 6);
    let mut pyg = pipeline(Framework::Pyg, ModelKind::Gcn, 6);
    let batch: Vec<_> = wg.dataset().train[..64].to_vec();
    let a = wg.run_iteration(0, 3, &batch, false);
    let b = pyg.run_iteration(0, 3, &batch, false);
    assert_eq!(a.sample_stats.edges_sampled, b.sample_stats.edges_sampled);
    assert_eq!(a.shapes.len(), b.shapes.len());
    for (sa, sb) in a.shapes.iter().zip(&b.shapes) {
        assert_eq!(sa.num_dst, sb.num_dst);
        assert_eq!(sa.num_src, sb.num_src);
        assert_eq!(sa.num_edges, sb.num_edges);
    }
}

#[test]
fn parallel_training_converges_like_the_paper_figure7() {
    // Figure 7: DGL and WholeGraph validation curves coincide epoch by
    // epoch. With dropout disabled, per-epoch losses track closely.
    let mut wg = pipeline(Framework::WholeGraph, ModelKind::GraphSage, 9);
    let mut dgl = pipeline(Framework::Dgl, ModelKind::GraphSage, 9);
    for epoch in 0..3 {
        let a = wg.train_epoch(epoch);
        let b = dgl.train_epoch(epoch);
        assert!(
            (a.loss - b.loss).abs() < 0.05 * (1.0 + a.loss.abs()),
            "epoch {epoch}: losses {} vs {}",
            a.loss,
            b.loss
        );
    }
    let va = wg.evaluate(&wg.dataset().val.clone());
    let vb = dgl.evaluate(&dgl.dataset().val.clone());
    assert!((va - vb).abs() < 0.08, "val accuracy {va} vs {vb}");
}

#[test]
fn different_seeds_sample_different_subgraphs() {
    // Sanity check that the equivalence above is not vacuous: different
    // seeds must actually change the sampled work.
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn).with_seed(100);
    let mut a = Pipeline::new(machine, dataset(4), cfg).unwrap();
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let cfg = PipelineConfig::tiny(Framework::WholeGraph, ModelKind::Gcn).with_seed(200);
    let mut b = Pipeline::new(machine, dataset(4), cfg).unwrap();
    let batch: Vec<_> = a.dataset().train[..64].to_vec();
    let ra = a.run_iteration(0, 0, &batch, false);
    let rb = b.run_iteration(0, 0, &batch, false);
    // Same batch, different sampling seed: frontier sizes almost surely
    // differ somewhere.
    let sa: Vec<_> = ra.shapes.iter().map(|s| s.num_edges).collect();
    let sb: Vec<_> = rb.shapes.iter().map(|s| s.num_edges).collect();
    assert_ne!(sa, sb, "different seeds produced identical sampled edges");
}

#[test]
fn dsm_and_host_stores_hold_the_same_graph() {
    // Structural round-trip at the store level, through the full
    // dataset-build path.
    let d = dataset(12);
    let machine = Machine::new(MachineConfig::dgx_like(4));
    let store = wg_graph::MultiGpuGraph::build(
        machine.cost(),
        4,
        &d.graph,
        &d.features,
        d.feature_dim,
        &machine.memory(),
    )
    .unwrap();
    for v in (0..d.num_nodes() as u64).step_by(97) {
        let via_dsm: HashSet<u64> = store
            .neighbors_of(v)
            .into_iter()
            .map(|g| store.partition().node_of(g))
            .collect();
        let via_host: HashSet<u64> = d.graph.neighbors(v).iter().copied().collect();
        assert_eq!(via_dsm, via_host, "adjacency of node {v} diverges");
    }
}
