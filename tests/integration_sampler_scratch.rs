//! Scratch-arena sampler equivalence: the allocation-free hot path
//! (`sample_minibatch_into` with a reused [`SampleScratch`] and recycled
//! [`MiniBatch`]) must produce **bit-identical** mini-batches to the
//! pre-refactor reference path (`sample_minibatch_reference`: per-node
//! neighbor copies, Vec-of-Vecs, serial flatten) — on both stores, across
//! reused batches and epochs, under the sequential reference schedule,
//! and through the heap fall-back for fanouts beyond the stack-sampler
//! bound.

use wg_graph::{gen, HostGraph, MultiGpuGraph};
use wg_sample::{
    sample_minibatch, sample_minibatch_into, sample_minibatch_reference, GraphAccess,
    HostGraphAccess, MiniBatch, MultiGpuAccess, SampleScratch, SamplerConfig, STACK_FANOUT_MAX,
};
use wg_sim::Machine;

fn assert_minibatch_eq(a: &MiniBatch, b: &MiniBatch, what: &str) {
    assert_eq!(a.batch_size, b.batch_size, "{what}: batch_size");
    assert_eq!(a.frontiers, b.frontiers, "{what}: frontiers");
    assert_eq!(a.blocks.len(), b.blocks.len(), "{what}: block count");
    for (l, (x, y)) in a.blocks.iter().zip(&b.blocks).enumerate() {
        assert_eq!(x.num_dst, y.num_dst, "{what}: block {l} num_dst");
        assert_eq!(x.num_src, y.num_src, "{what}: block {l} num_src");
        assert_eq!(x.offsets, y.offsets, "{what}: block {l} offsets");
        assert_eq!(x.indices, y.indices, "{what}: block {l} indices");
        assert_eq!(x.edge_ids, y.edge_ids, "{what}: block {l} edge_ids");
        assert_eq!(x.dup_count, y.dup_count, "{what}: block {l} dup_count");
    }
}

/// Exercise the scratch path against the reference on one access backend:
/// fresh-wrapper parity, then scratch + mini-batch reuse across several
/// (epoch, batch) points, then the same comparison pinned to the
/// sequential reference schedule.
fn check_backend<G: GraphAccess + Sync>(access: &G, handles: &[u64], cfg: &SamplerConfig) {
    let mut scratch = SampleScratch::default();
    let mut mb = MiniBatch::empty();
    // Reuse the same scratch and mini-batch across epochs and batches —
    // every round must still match a from-scratch reference run.
    for &(epoch, batch_idx) in &[(0u64, 0u64), (0, 1), (3, 2), (0, 0)] {
        let (reference, ref_stats) =
            sample_minibatch_reference(access, handles, cfg, epoch, batch_idx);
        let stats = sample_minibatch_into(
            access,
            handles,
            cfg,
            epoch,
            batch_idx,
            &mut scratch,
            &mut mb,
        );
        assert_minibatch_eq(&mb, &reference, &format!("epoch {epoch} batch {batch_idx}"));
        assert_eq!(stats.edges_sampled, ref_stats.edges_sampled);
        assert_eq!(stats.keys_inserted, ref_stats.keys_inserted);

        // The convenience wrapper (fresh buffers) agrees too.
        let (fresh, _) = sample_minibatch(access, handles, cfg, epoch, batch_idx);
        assert_minibatch_eq(&fresh, &reference, "fresh wrapper");

        // And the sequential reference schedule produces the same bits as
        // the pool schedule above.
        let seq = rayon::run_sequential(|| {
            let mut s = SampleScratch::default();
            let mut m = MiniBatch::empty();
            sample_minibatch_into(access, handles, cfg, epoch, batch_idx, &mut s, &mut m);
            m
        });
        assert_minibatch_eq(&seq, &reference, "sequential schedule");
    }
}

#[test]
fn scratch_sampler_matches_reference_on_both_stores() {
    let graph = gen::erdos_renyi(400, 12.0, 7);
    let feature_dim = 2;
    let features: Vec<f32> = (0..graph.num_nodes() * feature_dim)
        .map(|i| (i as f32 * 0.05).sin())
        .collect();
    let cfg = SamplerConfig {
        fanouts: vec![10, 5],
        seed: 23,
    };

    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &graph,
        &features,
        feature_dim,
        &machine.memory(),
    )
    .unwrap();
    let access = MultiGpuAccess::new(&store);
    let handles: Vec<u64> = (0..120u64)
        .step_by(3)
        .map(|v| access.handle_of(v))
        .collect();
    check_backend(&access, &handles, &cfg);

    let host = HostGraph::build(graph, features, feature_dim, &machine.memory()).unwrap();
    let access = HostGraphAccess(&host);
    let handles: Vec<u64> = (0..120u64)
        .step_by(3)
        .map(|v| access.handle_of(v))
        .collect();
    check_backend(&access, &handles, &cfg);
}

#[test]
fn scratch_sampler_matches_reference_beyond_stack_fanout() {
    // A dense graph and a fanout above STACK_FANOUT_MAX drive the per-node
    // sampler through the heap fall-back; equivalence must still hold.
    let graph = gen::erdos_renyi(200, 80.0, 31);
    let feature_dim = 1;
    let features: Vec<f32> = vec![0.5; graph.num_nodes() * feature_dim];
    let big = STACK_FANOUT_MAX + 6;
    let cfg = SamplerConfig {
        fanouts: vec![big, 12],
        seed: 91,
    };
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &graph,
        &features,
        feature_dim,
        &machine.memory(),
    )
    .unwrap();
    let access = MultiGpuAccess::new(&store);
    let handles: Vec<u64> = (0..64u64).map(|v| access.handle_of(v)).collect();
    // At least one frontier node must actually exceed the stack bound.
    assert!(
        handles.iter().any(|&h| access.degree(h) > STACK_FANOUT_MAX),
        "test graph too sparse to exercise the heap fall-back"
    );
    check_backend(&access, &handles, &cfg);
}

#[test]
fn zero_copy_adjacency_matches_copied_neighbors() {
    // GraphAccess::neighbors (borrowed CSR slice) and the old
    // neighbors_into (copy into a caller Vec) must expose identical
    // adjacency on both backends.
    let graph = gen::erdos_renyi(150, 8.0, 3);
    let features: Vec<f32> = vec![0.0; 150];
    let machine = Machine::dgx_a100();
    let store = MultiGpuGraph::build(
        machine.cost(),
        machine.num_gpus(),
        &graph,
        &features,
        1,
        &machine.memory(),
    )
    .unwrap();
    let access = MultiGpuAccess::new(&store);
    let host = HostGraph::build(graph.clone(), features, 1, &machine.memory()).unwrap();
    let host_access = HostGraphAccess(&host);
    for v in 0..150u64 {
        let h = access.handle_of(v);
        let mut copied = Vec::new();
        access.neighbors_into(h, &mut copied);
        assert_eq!(access.neighbors(h), &copied[..], "dsm node {v}");
        assert_eq!(access.degree(h), copied.len());
        let hh = host_access.handle_of(v);
        assert_eq!(
            host_access.neighbors(hh),
            graph.neighbors(v),
            "host node {v}"
        );
    }
}
